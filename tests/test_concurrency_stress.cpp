/**
 * @file
 * Concurrency stress battery for the engine's shared components, built
 * to run under ThreadSanitizer (ctest -L analysis in the MG_TSAN
 * build). Each test hammers one shared structure from many threads at
 * once — ThreadPool::parallelFor, ArtifactCache memoisation, the
 * sweep journal, the checkpoint store (including its fail-soft write
 * gate, whose warn-once latch is read outside the store lock), and
 * FailSoftGate itself. The assertions check the determinism contract
 * (once-per-key computes, exact aggregate sums, warn-once latching);
 * TSan checks the memory model underneath.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/failsoft.hh"
#include "engine/artifact_cache.hh"
#include "engine/checkpoint_store.hh"
#include "engine/journal.hh"
#include "engine/thread_pool.hh"
#include "sim/report.hh"

using namespace mg;
namespace fs = std::filesystem;

namespace {

/** Fresh per-test scratch directory (removed on destruction). */
struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("mg-stress-test-" + tag + "-" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
};

/// Worker counts high enough to force real interleaving even on a
/// single hardware thread (the pool oversubscribes happily).
constexpr int kJobs = 8;

TEST(StressThreadPool, ParallelForSumsExactlyOnce)
{
    constexpr std::size_t n = 20000;
    std::vector<std::uint8_t> hit(n, 0);
    std::atomic<std::uint64_t> sum{0};
    ThreadPool::parallelFor(kJobs, n, [&](std::size_t i) {
        hit[i]++;   // distinct slots: racy only if indices collide
        sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
    EXPECT_TRUE(std::all_of(hit.begin(), hit.end(),
                            [](std::uint8_t h) { return h == 1; }));
}

TEST(StressThreadPool, ThrowingIndicesStillRunEveryIndex)
{
    constexpr std::size_t n = 4096;
    std::atomic<std::uint64_t> ran{0};
    try {
        ThreadPool::parallelFor(kJobs, n, [&](std::size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i % 97 == 3)
                throw std::runtime_error("index " + std::to_string(i));
        });
        FAIL() << "expected the lowest-index exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "index 3");
    }
    EXPECT_EQ(ran.load(), n);
}

TEST(StressThreadPool, ReusedPoolAcrossWaves)
{
    ThreadPool pool(kJobs);
    std::atomic<std::uint64_t> total{0};
    for (int wave = 0; wave < 50; ++wave) {
        for (int t = 0; t < 64; ++t)
            pool.submit(
                [&] { total.fetch_add(1, std::memory_order_relaxed); });
        pool.wait();
    }
    EXPECT_EQ(total.load(), 50u * 64u);
}

TEST(StressArtifactCache, OncePerKeyUnderContention)
{
    ArtifactCache<std::uint64_t> cache;
    constexpr int keys = 16;
    constexpr std::size_t n = 2048;
    std::atomic<std::uint64_t> made{0};
    std::vector<std::uint64_t> got(n, 0);
    ThreadPool::parallelFor(kJobs, n, [&](std::size_t i) {
        int k = static_cast<int>(i) % keys;
        auto v = cache.get("key" + std::to_string(k), [&] {
            made.fetch_add(1, std::memory_order_relaxed);
            return std::uint64_t(k) * 1000003u;
        });
        got[i] = *v;
    });
    // Exactly one compute per key no matter the schedule; everyone
    // observed the published (immutable) value.
    EXPECT_EQ(made.load(), static_cast<std::uint64_t>(keys));
    EXPECT_EQ(cache.computes(), static_cast<std::uint64_t>(keys));
    EXPECT_EQ(cache.hits(), n - keys);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(got[i], (i % keys) * 1000003u);
}

TEST(StressArtifactCache, FailedComputeIsNotMemoised)
{
    ArtifactCache<int> cache;
    std::atomic<int> attempts{0};
    constexpr std::size_t n = 512;
    std::atomic<std::uint64_t> failures{0}, successes{0};
    ThreadPool::parallelFor(kJobs, n, [&](std::size_t) {
        try {
            // First attempt per arrival order may throw; the error
            // must never stick to the key.
            auto v = cache.get("flaky", [&] {
                if (attempts.fetch_add(1, std::memory_order_relaxed) == 0)
                    throw std::runtime_error("transient");
                return 7;
            });
            EXPECT_EQ(*v, 7);
            successes.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::runtime_error &) {
            failures.fetch_add(1, std::memory_order_relaxed);
        }
    });
    EXPECT_EQ(failures.load() + successes.load(), n);
    EXPECT_GT(successes.load(), 0u);
    // Post-storm, the key serves the memoised success.
    auto v = cache.get("flaky", [] { return 7; });
    EXPECT_EQ(*v, 7);
}

TEST(StressJournal, ConcurrentRecordsAllSurviveReplay)
{
    ScratchDir dir("journal");
    constexpr std::size_t n = 256;
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(dir.str(), 0xfeedULL));
        ThreadPool::parallelFor(kJobs, n, [&](std::size_t i) {
            SweepCell cell;
            cell.timed = true;
            cell.templates = i;
            cell.staticCoverage = static_cast<double>(i) / n;
            j.record(i, cell);
        });
        EXPECT_EQ(j.recorded(), n);
    }
    // A second session replays every record bit-exactly.
    SweepJournal j2;
    ASSERT_TRUE(j2.open(dir.str(), 0xfeedULL));
    EXPECT_EQ(j2.replayed(), n);
    for (std::size_t i = 0; i < n; ++i) {
        SweepCell cell;
        ASSERT_TRUE(j2.lookup(i, cell)) << i;
        EXPECT_TRUE(cell.timed);
        EXPECT_EQ(cell.templates, i);
        EXPECT_DOUBLE_EQ(cell.staticCoverage,
                         static_cast<double>(i) / n);
    }
}

TEST(StressCheckpointStore, ConcurrentStoreLoadRoundTrips)
{
    ScratchDir dir("store");
    CheckpointStore store({dir.str(), 64ull << 20});
    ASSERT_TRUE(store.enabled());
    constexpr std::size_t n = 128;
    auto payloadFor = [](std::size_t i) {
        std::vector<std::uint8_t> p(512 + i);
        for (std::size_t b = 0; b < p.size(); ++b)
            p[b] = static_cast<std::uint8_t>((b * 131 + i) & 0xff);
        return p;
    };
    // Mixed readers and writers over a shared key space.
    ThreadPool::parallelFor(kJobs, n * 2, [&](std::size_t slot) {
        std::size_t i = slot % n;
        std::string key = "cell" + std::to_string(i);
        if (slot < n) {
            store.store(key, payloadFor(i));
        } else {
            std::vector<std::uint8_t> got;
            if (store.load(key, got)) {
                EXPECT_EQ(got, payloadFor(i));
            }
        }
    });
    // Quiesced: every record reads back verified.
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<std::uint8_t> got;
        ASSERT_TRUE(store.load("cell" + std::to_string(i), got)) << i;
        EXPECT_EQ(got, payloadFor(i));
    }
    EXPECT_EQ(store.counters().writebacks, n);
}

TEST(StressCheckpointStore, WriteGateLatchRacesAreBenign)
{
    // Remove the directory out from under the store so every write
    // fails: racing store() calls all hit the fail-soft gate, whose
    // latch is intentionally read outside the store lock. TSan proves
    // the latch is well-ordered; the assertion proves it closed.
    ScratchDir dir("gate");
    CheckpointStore store({dir.str(), 64ull << 20});
    ASSERT_TRUE(store.enabled());
    fs::remove_all(dir.path);
    constexpr std::size_t n = 256;
    ThreadPool::parallelFor(kJobs, n, [&](std::size_t i) {
        std::string key = "k";
        key += std::to_string(i);
        store.store(key, std::vector<std::uint8_t>(64, 0xab));
    });
    EXPECT_FALSE(store.writable());
    EXPECT_EQ(store.counters().writebacks, 0u);
    fs::create_directories(dir.path);   // let ~ScratchDir clean up
}

TEST(StressFailSoftGate, ManyThreadsLatchExactlyOnce)
{
    for (int round = 0; round < 64; ++round) {
        FailSoftGate gate;
        EXPECT_TRUE(gate.ok());
        std::atomic<int> go{0};
        std::vector<std::thread> threads;
        threads.reserve(4);
        for (int t = 0; t < 4; ++t)
            threads.emplace_back([&] {
                go.fetch_add(1, std::memory_order_relaxed);
                while (go.load(std::memory_order_relaxed) < 4) {
                    // spin: all threads release together
                }
                gate.fail("stress-test gate closed (expected, once)");
            });
        for (auto &th : threads)
            th.join();
        EXPECT_FALSE(gate.ok());
    }
}

} // namespace
