/**
 * @file
 * CFG and liveness unit tests.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "cfg/basic_block.hh"
#include "cfg/liveness.hh"

namespace mg {
namespace {

TEST(CfgTest, BlockSplitting)
{
    Program p = assemble(R"(
        .text
main:
        li r1, 3
loop:
        subq r1, 1, r1
        bgt r1, loop
        li r2, 1
        halt
    )");
    Cfg cfg(p);
    // Blocks: [main..li], [loop..bgt], [li r2, halt]? halt splits too.
    ASSERT_GE(cfg.blocks().size(), 3u);
    int loop_blk = cfg.blockStartingAt(1);
    ASSERT_GE(loop_blk, 0);
    const BasicBlock &b = cfg.blocks()[static_cast<size_t>(loop_blk)];
    EXPECT_EQ(b.size(), 2u);
    // Loop block has two successors: itself and fall-through.
    EXPECT_EQ(b.succs.size(), 2u);
}

TEST(CfgTest, IndirectExitFlag)
{
    Program p = assemble(R"(
        .text
main:
        bsr r26, f
        halt
f:
        ret
    )");
    Cfg cfg(p);
    bool found = false;
    for (const auto &b : cfg.blocks()) {
        if (p.text[b.last - 1].op == Op::RET) {
            EXPECT_TRUE(b.hasIndirectExit);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(LivenessTest, UseDefSets)
{
    Instruction add;
    add.op = Op::ADDL;
    add.ra = 1;
    add.rb = 2;
    add.rc = 3;
    EXPECT_TRUE(Liveness::uses(add).test(1));
    EXPECT_TRUE(Liveness::uses(add).test(2));
    EXPECT_FALSE(Liveness::uses(add).test(3));
    EXPECT_TRUE(Liveness::defs(add).test(3));

    Instruction st;
    st.op = Op::STQ;
    st.ra = 4;
    st.rb = 5;
    EXPECT_TRUE(Liveness::uses(st).test(4));
    EXPECT_TRUE(Liveness::uses(st).test(5));
    EXPECT_TRUE(Liveness::defs(st).none());
}

TEST(LivenessTest, DeadAfterRedefinition)
{
    Program p = assemble(R"(
        .text
main:
        addq r1, r2, r3    # r3 defined
        addq r3, r3, r4    # r3 used, r4 defined
        li r3, 0           # r3 redefined
        bgt r4, main
        halt
    )");
    Cfg cfg(p);
    Liveness live(cfg);
    int entry = cfg.blockStartingAt(0);
    // r1, r2 are live-in (upward-exposed); r4 is not (defined first).
    EXPECT_TRUE(live.liveIn(entry).test(1));
    EXPECT_TRUE(live.liveIn(entry).test(2));
    EXPECT_FALSE(live.liveIn(entry).test(4));
}

TEST(LivenessTest, LoopCarriedLiveness)
{
    Program p = assemble(R"(
        .text
main:
        li r1, 10
loop:
        subq r1, 1, r1
        bgt r1, loop
        halt
    )");
    Cfg cfg(p);
    Liveness live(cfg);
    int loop_blk = cfg.blockStartingAt(1);
    // r1 is live around the loop.
    EXPECT_TRUE(live.liveIn(loop_blk).test(1));
    EXPECT_TRUE(live.liveOut(loop_blk).test(1));
}

TEST(LivenessTest, ZeroRegisterNeverLive)
{
    Program p = assemble(R"(
        .text
main:
        addq r31, r1, r2
        halt
    )");
    Cfg cfg(p);
    Liveness live(cfg);
    EXPECT_FALSE(live.liveIn(0).test(static_cast<size_t>(regZero)));
}

} // namespace
} // namespace mg
