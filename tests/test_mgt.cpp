/**
 * @file
 * MGT unit tests: template schedules (bank packing, load shadows,
 * collapsing), MGHT header derivation (LAT, FU0, FUBMP), and the
 * paper's Figure 2 worked example.
 */

#include <gtest/gtest.h>

#include "mg/mgt.hh"

namespace mg {
namespace {

TemplateInsn
alu(Op op, OpndRef a, OpndRef b, std::int64_t imm = 0, bool useImm = false)
{
    return {op, a, b, imm, useImm};
}

constexpr OpndRef E0{OpndKind::E0, -1};
constexpr OpndRef E1{OpndKind::E1, -1};
constexpr OpndRef IM{OpndKind::Imm, -1};

OpndRef
M(int i)
{
    return {OpndKind::M, static_cast<std::int8_t>(i)};
}

// Figure 2, MGID 12: addl E0,2 | cmplt M0,E1 | bne M1,0xA.
// Header: LAT 1 (output from the first instruction), FU0 = AP, empty
// FUBMP (the whole graph rides one ALU pipeline).
TEST(Figure2, MiniGraph12)
{
    MgTemplate t;
    t.insns = {alu(Op::ADDL, E0, IM, 2, true),
               alu(Op::CMPLT, M(0), E1),
               alu(Op::BNE, M(1), IM, 0xA, false)};
    t.outIdx = 0;
    t.finalize(MgtMachine{});

    EXPECT_EQ(t.hdr.lat, 1);
    EXPECT_EQ(t.hdr.totalLat, 3);
    EXPECT_EQ(t.hdr.fu0, FuKind::AluPipe);
    EXPECT_EQ(t.hdr.fubmpStr(), "-:-");
    EXPECT_TRUE(t.hdr.endsInBranch);
    EXPECT_EQ(t.startCycle, (std::vector<int>{0, 1, 2}));
}

// Figure 2, MGID 34: ldq 16(E0) | srl M0,14 | and M1,1 with a 2-cycle
// load: bank 1 is the load shadow; LAT = 4 (output from the last
// instruction); FU0 = LD.
TEST(Figure2, MiniGraph34)
{
    MgTemplate t;
    t.insns = {alu(Op::LDQ, E0, IM, 16, false),
               alu(Op::SRL, M(0), IM, 14, true),
               alu(Op::AND, M(1), IM, 1, true)};
    t.outIdx = 2;
    t.finalize(MgtMachine{});

    EXPECT_EQ(t.hdr.lat, 4);
    EXPECT_EQ(t.hdr.totalLat, 4);
    EXPECT_EQ(t.hdr.fu0, FuKind::LoadPort);
    EXPECT_TRUE(t.hdr.hasLoad);
    EXPECT_EQ(t.startCycle, (std::vector<int>{0, 2, 3}));
    // The trailing integer pair runs on an ALU pipeline reserved at
    // cycle 2 (the paper's alternative "-:AP:-" template).
    EXPECT_EQ(t.hdr.fubmpStr(), "-:AP:-");
}

TEST(Figure2, MiniGraph34OnPlainAlus)
{
    MgTemplate t;
    t.insns = {alu(Op::LDQ, E0, IM, 16, false),
               alu(Op::SRL, M(0), IM, 14, true),
               alu(Op::AND, M(1), IM, 1, true)};
    t.outIdx = 2;
    MgtMachine m;
    m.useAluPipes = false;
    t.finalize(m);
    // Without ALU pipelines the tail reserves plain ALUs in both
    // cycles: the paper's "-:ALU:ALU" template.
    EXPECT_EQ(t.hdr.fubmpStr(), "-:ALU:ALU");
}

TEST(MgtSchedule, CollapsingPairsAluOps)
{
    MgTemplate t;
    t.insns = {alu(Op::ADDL, E0, IM, 1, true),
               alu(Op::ADDL, M(0), IM, 1, true)};
    t.outIdx = 1;
    MgtMachine m;
    m.collapsing = true;
    t.finalize(m);
    // Two-instruction graphs execute in one cycle (paper Section 6.2).
    EXPECT_EQ(t.hdr.totalLat, 1);
    EXPECT_EQ(t.startCycle, (std::vector<int>{0, 0}));

    MgTemplate t4;
    t4.insns = {alu(Op::ADDL, E0, IM, 1, true),
                alu(Op::ADDL, M(0), IM, 1, true),
                alu(Op::ADDL, M(1), IM, 1, true),
                alu(Op::ADDL, M(2), IM, 1, true)};
    t4.outIdx = 3;
    t4.finalize(m);
    // Three and four instruction graphs execute in two cycles.
    EXPECT_EQ(t4.hdr.totalLat, 2);
}

TEST(MgtSchedule, StoreGraphHasNoOutput)
{
    MgTemplate t;
    t.insns = {alu(Op::ADDL, E0, IM, 4, true),
               {Op::STQ, M(0), E1, 0, false}};
    t.outIdx = -1;
    t.finalize(MgtMachine{});
    EXPECT_TRUE(t.hdr.hasStore);
    EXPECT_EQ(t.hdr.lat, t.hdr.totalLat);
    EXPECT_EQ(t.hdr.fubmpStr(), "ST");
}

TEST(MgtSchedule, OutputBeforeEndGivesShortLat)
{
    MgTemplate t;
    t.insns = {alu(Op::ADDL, E0, IM, 2, true),
               alu(Op::CMPLT, M(0), E1),
               alu(Op::BNE, M(1), IM, 0, false)};
    t.outIdx = 0;
    t.finalize(MgtMachine{});
    // Output emerges after cycle 1 even though the graph runs 3.
    EXPECT_LT(t.hdr.lat, t.hdr.totalLat);
}

TEST(MgTableTest, AddAndLookup)
{
    MgTable table;
    MgTemplate t;
    t.insns = {alu(Op::ADDL, E0, IM, 1, true),
               alu(Op::ADDL, M(0), IM, 1, true)};
    t.outIdx = 1;
    t.finalize(MgtMachine{});
    MgId id = table.add(t);
    EXPECT_TRUE(table.contains(id));
    EXPECT_FALSE(table.contains(id + 1));
    EXPECT_EQ(table.at(id).size(), 2);
    EXPECT_FALSE(table.str().empty());
}

TEST(MgTemplateTest, KeyCoalescesIdenticalDataflow)
{
    MgTemplate a;
    a.insns = {alu(Op::ADDL, E0, IM, 2, true), alu(Op::CMPLT, M(0), E1)};
    a.outIdx = 0;
    MgTemplate b = a;
    EXPECT_EQ(a.key(), b.key());
    b.insns[0].imm = 3;   // different immediate: different template
    EXPECT_NE(a.key(), b.key());
    MgTemplate c = a;
    c.outIdx = 1;
    EXPECT_NE(a.key(), c.key());
}

TEST(MgTemplateTest, MgstRendering)
{
    MgTemplate t;
    t.insns = {alu(Op::LDQ, E0, IM, 16, false),
               alu(Op::SRL, M(0), IM, 14, true)};
    t.outIdx = 1;
    t.finalize(MgtMachine{});
    std::string s = t.mgstStr();
    EXPECT_NE(s.find("ldq 16(E0)"), std::string::npos);
    EXPECT_NE(s.find("srl M0,14"), std::string::npos);
    EXPECT_NE(s.find("--"), std::string::npos);   // load shadow bank
}

} // namespace
} // namespace mg
