/**
 * @file
 * Randomized end-to-end property tests.
 *
 * RewriteEquivalence: generate random (but always terminating)
 * MG-Alpha programs, run the full mini-graph flow — profile, select
 * under a random policy, rewrite, execute — and require that the
 * handle-bearing program leaves memory bit-identical to the original.
 * Registers are deliberately not compared: interior values are dead
 * by construction but may legitimately differ at halt.
 *
 * DifferentialConfigsAgree: the differential-verification battery.
 * Every random program runs through the functional emulator AND the
 * cycle-level timing core under the paper's three machine shapes
 * (baseline, integer mini-graphs, integer-memory mini-graphs); all
 * six executions must retire the same architectural work and leave
 * bit-identical memory, and the per-config retirement checksums
 * (work + final memory image) must agree across configurations.
 *
 * StoreBackedSamplingMatchesWarmThrough: the checkpoint-store
 * serialization leg. Random programs under random sampling grids run
 * storeless, store-cold, and store-warm; the warm session (which
 * restores serialized warm records instead of re-warming) must match
 * the cold session bit for bit.
 *
 * SweepUnderRandomFaultsMatchesFaultFree: the fault-tolerance leg.
 * Random engine sweeps run fault-free and again under a random
 * healing fault spec (seeded arming, firing counts within the retry
 * budget); the faulted sweep must retry its way to the fault-free
 * sweep's exact cells.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "engine/checkpoint_store.hh"
#include "engine/engine.hh"
#include "engine/fault_inject.hh"
#include "sim/simulator.hh"
#include "uarch/core.hh"

#include "stats_hash.hh"

namespace mg {
namespace {

/** Build a random terminating program. Structure: a chain of blocks
 *  that each do random ALU/memory work, decrement a loop counter, and
 *  branch among themselves until the counter runs out. */
std::string
randomProgram(Rng &rng, int blocks, int iters = 400)
{
    std::string src = strfmt(".text\nmain:\n    li r9, %d\n", iters);
    // Seed some register values.
    for (int r = 1; r <= 8; ++r)
        src += strfmt("    li r%d, %lld\n", r,
                      static_cast<long long>(rng.range(-1000, 1000)));
    src += "    lda r10, buf\n";

    const char *aluOps[] = {"addq", "subq", "addl", "and", "bis",
                            "xor", "s4addq", "s8addl", "cmplt",
                            "cmpule", "srl", "sll", "sra"};
    for (int b = 0; b < blocks; ++b) {
        src += strfmt("blk%d:\n", b);
        int len = static_cast<int>(2 + rng.below(7));
        for (int i = 0; i < len; ++i) {
            int kind = static_cast<int>(rng.below(10));
            int d = static_cast<int>(1 + rng.below(8));
            int a = static_cast<int>(1 + rng.below(8));
            int c = static_cast<int>(1 + rng.below(8));
            if (kind < 6) {
                const char *op = aluOps[rng.below(13)];
                bool shift = op[0] == 's' && op[1] != '4' &&
                    op[1] != '8';
                if (rng.below(2) || shift) {
                    long long imm = shift
                        ? static_cast<long long>(rng.below(32))
                        : static_cast<long long>(rng.range(-64, 64));
                    src += strfmt("    %s r%d, %lld, r%d\n", op, a,
                                  imm, d);
                } else {
                    src += strfmt("    %s r%d, r%d, r%d\n", op, a, c,
                                  d);
                }
            } else if (kind < 8) {
                // Bounded store: address = buf + (reg & 248).
                src += strfmt("    and r%d, 248, r11\n", a);
                src += "    addq r10, r11, r11\n";
                src += strfmt("    stq r%d, 0(r11)\n", c);
            } else {
                // Bounded load.
                src += strfmt("    and r%d, 248, r11\n", a);
                src += "    addq r10, r11, r11\n";
                src += strfmt("    ldq r%d, 0(r11)\n", d);
            }
        }
        // Countdown and hop to a random block (or fall through).
        src += "    subq r9, 1, r9\n";
        src += "    ble r9, fin\n";
        int target = static_cast<int>(rng.below(
            static_cast<std::uint64_t>(blocks)));
        if (target != b + 1)
            src += strfmt("    br blk%d\n", target);
    }
    src += "fin:\n    halt\n    .data\nbuf:    .space 256\n";
    return src;
}

class Fuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(Fuzz, RewriteEquivalence)
{
    Rng rng(0xfacade + static_cast<unsigned>(GetParam()) * 977);
    Program prog = assemble(randomProgram(rng, 6),
                            strfmt("fuzz%d", GetParam()));

    Emulator ref(prog);
    EmuResult rr = ref.run(10000000);
    ASSERT_EQ(rr.stop, StopReason::Halted);

    // Random policy.
    SelectionPolicy policy;
    policy.allowMemory = rng.below(2);
    policy.allowExternallySerial = rng.below(2);
    policy.allowInternallySerial = rng.below(2);
    policy.allowInteriorLoads = rng.below(2);
    policy.maxSize = static_cast<int>(2 + rng.below(7));
    MgtMachine machine;
    machine.collapsing = rng.below(2);
    bool compress = rng.below(2);

    PreparedMg prep = prepareMiniGraphs(prog, rr.profile, policy,
                                        machine, compress);
    Emulator rw(prep.program, &prep.table);
    EmuResult wr = rw.run(10000000);
    ASSERT_EQ(wr.stop, StopReason::Halted);

    // Same architectural work, identical memory.
    EXPECT_EQ(wr.dynWork, rr.dynWork);
    Addr buf = prog.symbol("buf");
    Addr buf2 = prep.program.symbol("buf");
    EXPECT_EQ(ref.memory().readBlock(buf, 256),
              rw.memory().readBlock(buf2, 256))
        << "memory diverged (policy mem=" << policy.allowMemory
        << " size=" << policy.maxSize << " compress=" << compress
        << ")";

    // The timing core agrees too (oracle equivalence on a random
    // program).
    if (GetParam() % 4 == 0) {
        SimConfig cfg = SimConfig::intMemMg();
        CoreStats st = runCore(prep.program, &prep.table, cfg.core,
                               nullptr);
        EXPECT_EQ(st.committedWork, rr.dynWork);
    }
}

/** FNV-1a over the quantities every configuration must retire
 *  identically: constituent work and the architectural memory image.
 *  (Pipeline slots, cycles, and stall counters legitimately differ
 *  across machine shapes; registers may hold dead interior values.) */
std::uint64_t
retirementChecksum(std::uint64_t work, const std::vector<std::uint8_t> &mem)
{
    std::uint64_t h = testhash::fnv1a(testhash::fnvBasis, work);
    for (std::uint8_t b : mem)
        h = testhash::fnv1a(h, b);
    return h;
}

TEST_P(Fuzz, DifferentialConfigsAgree)
{
    // Distinct seed stream from RewriteEquivalence so the two
    // batteries cover different programs.
    Rng rng(0xd1ff00 + static_cast<unsigned>(GetParam()) * 1013);
    Program prog = assemble(randomProgram(rng, 6),
                            strfmt("diff%d", GetParam()));

    Emulator ref(prog);
    EmuResult rr = ref.run(10000000);
    ASSERT_EQ(rr.stop, StopReason::Halted);
    std::vector<std::uint8_t> refMem =
        ref.memory().readBlock(prog.symbol("buf"), 256);
    std::uint64_t refSum = retirementChecksum(rr.dynWork, refMem);

    SimConfig configs[] = {SimConfig::baseline(), SimConfig::intMg(),
                           SimConfig::intMemMg()};
    for (const SimConfig &cfg : configs) {
        const Program *p = &prog;
        const MgTable *mgt = nullptr;
        PreparedMg prep;
        if (cfg.useMiniGraphs) {
            prep = prepareMiniGraphs(prog, rr.profile, cfg.policy,
                                     cfg.machine, cfg.compress);
            p = &prep.program;
            mgt = &prep.table;

            // The rewritten binary through the emulator alone.
            Emulator rw(*p, mgt);
            EmuResult wr = rw.run(10000000);
            ASSERT_EQ(wr.stop, StopReason::Halted) << cfg.name;
            EXPECT_EQ(wr.dynWork, rr.dynWork) << cfg.name;
            EXPECT_EQ(retirementChecksum(
                          wr.dynWork,
                          rw.memory().readBlock(p->symbol("buf"), 256)),
                      refSum)
                << cfg.name << " (emulator)";
        }

        // The timing core driving the same binary.
        Core core(*p, mgt, cfg.core);
        CoreStats st = core.run();
        EXPECT_EQ(st.committedWork, rr.dynWork) << cfg.name;
        EXPECT_EQ(
            retirementChecksum(
                st.committedWork,
                core.oracle().memory().readBlock(p->symbol("buf"), 256)),
            refSum)
            << cfg.name << " (timing core)";
    }
}

TEST_P(Fuzz, StoreBackedSamplingMatchesWarmThrough)
{
    // Serialization leg (every tenth seed): a random program, a
    // random sampling grid (so warm-record chunk positions vary per
    // seed), and three sampled runs — storeless, cold-store, and
    // warm-store over the same directory. The cold and warm store
    // sessions must agree bit for bit: the warm session replays
    // serialized warm records instead of re-warming, so any drift
    // here is a serialization or restore defect.
    if (GetParam() % 10 != 3)
        return;
    Rng rng(0x5e71a1 + static_cast<unsigned>(GetParam()) * 887);
    // Long enough that the grid below never degenerates to an exact
    // run (min ~4 work per iteration).
    Program prog = assemble(randomProgram(rng, 6, 8000),
                            strfmt("ser%d", GetParam()));

    Emulator ref(prog);
    EmuResult rr = ref.run(100000000);
    ASSERT_EQ(rr.stop, StopReason::Halted);

    SimConfig cfg = SimConfig::intMemMg();
    cfg.sampling.enabled = true;
    cfg.sampling.interval = 50;
    cfg.sampling.period = 600 + 60 * (GetParam() % 5);
    cfg.sampling.warmup = 100;
    cfg.sampling.ffWarm = 100;
    PreparedMg prep = prepareMiniGraphs(prog, rr.profile, cfg.policy,
                                        cfg.machine, cfg.compress);
    SampleSummary sum = collectSampleSummary(
        prep.program, &prep.table, nullptr, cfg.sampling);

    SampledStats s0 =
        runCellSampled(prep.program, &prep, cfg, nullptr, sum);
    ASSERT_FALSE(s0.exact) << "grid degenerated; widen iters";

    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
        strfmt("mg-fuzz-store-%d-%d", GetParam(), ::getpid());
    fs::remove_all(dir);
    CheckpointStore store({dir.string()});
    std::string cellKey = strfmt("fuzz|ser%d", GetParam());

    auto cold = makeCellClient(store, cellKey);
    SampledStats s1 =
        runCellSampled(prep.program, &prep, cfg, nullptr, sum,
                       cold.get());
    auto warm = makeCellClient(store, cellKey);
    SampledStats s2 =
        runCellSampled(prep.program, &prep, cfg, nullptr, sum,
                       warm.get());
    fs::remove_all(dir);

    EXPECT_GT(s1.ckptWritebacks, 0u);
    EXPECT_GT(s2.ckptRestores, 0u);
    EXPECT_EQ(s2.ckptWritebacks, 0u);
    // The restore-warm session retires the cold session's stats
    // exactly (est carries every counter, so == is a checksum of the
    // whole run).
    EXPECT_EQ(s2.est, s1.est);
    EXPECT_EQ(s2.intervals, s1.intervals);
    EXPECT_EQ(s2.ipcHat, s1.ipcHat);
    EXPECT_EQ(s2.ipcRelCi95, s1.ipcRelCi95);
    // And the storeless run shares the same functional ground truth:
    // identical totals even where the store path reruns seeded.
    EXPECT_EQ(s1.totalWork, s0.totalWork);
}

TEST_P(Fuzz, SweepUnderRandomFaultsMatchesFaultFree)
{
    // Fault-tolerance leg (every tenth seed): a random program swept
    // through the engine fault-free, then again under a random fault
    // spec whose per-key firing counts stay within the retry budget —
    // every fault heals, so the faulted sweep must converge to the
    // fault-free sweep cell for cell.
    if (GetParam() % 10 != 6)
        return;
    Rng rng(0xfa017 + static_cast<unsigned>(GetParam()) * 769);
    Program prog = assemble(randomProgram(rng, 6),
                            strfmt("fault%d", GetParam()));

    SweepSpec spec;
    spec.title = strfmt("fuzz fault %d", GetParam());
    EngineWorkload w;
    w.id = strfmt("fuzz-fault-%d", GetParam());
    w.suite = "fuzz";
    w.program = &prog;
    spec.workloads = {w};
    spec.columns = {{"baseline", SimConfig::baseline(), true},
                    {"int-mem", SimConfig::intMemMg(), true}};
    spec.baselineColumn = 0;

    SweepResult clean = ExperimentEngine(2).sweep(spec);

    // Random healing spec: arming fraction, firing count (within the
    // retry budget of 2), seed, and optionally a key filter.
    int count = static_cast<int>(1 + rng.below(2));
    std::string faultSpec = strfmt(
        "cell%s:p=0.%d:count=%d:seed=%llu",
        rng.below(2) ? "@int-mem" : "",
        static_cast<int>(3 + rng.below(7)), count,
        static_cast<unsigned long long>(rng.below(1u << 16)));
    FaultInjector::global().configure(faultSpec);
    ExperimentEngine engine(2);
    FaultPolicy policy;
    policy.backoffMs = 1;
    engine.setFaultPolicy(policy);
    SweepResult faulted = engine.sweep(spec);
    FaultInjector::global().configure("");

    ASSERT_EQ(clean.cells.size(), faulted.cells.size());
    for (std::size_t i = 0; i < clean.cells.size(); ++i) {
        const SweepCell &a = clean.cells[i];
        const SweepCell &b = faulted.cells[i];
        EXPECT_EQ(b.outcome, CellOutcome::Ok)
            << "spec " << faultSpec << " cell " << i;
        EXPECT_EQ(a.stats, b.stats) << "spec " << faultSpec;
        EXPECT_EQ(a.timed, b.timed);
        EXPECT_EQ(a.staticCoverage, b.staticCoverage);
        EXPECT_EQ(a.templates, b.templates);
        EXPECT_LE(b.retries, 2u);   // healed within the retry budget
    }
}

// >= 200 seeds in CI: each seed exercises RewriteEquivalence (random
// policy), the three-config differential battery, and (every tenth
// seed) the checkpoint-store serialization leg.
INSTANTIATE_TEST_SUITE_P(Random, Fuzz, ::testing::Range(0, 200));

} // namespace
} // namespace mg
