/**
 * @file
 * Critical-path analyzer battery (labels: unit, critpath).
 *
 * Three layers, mirroring the analyzer's three walks:
 *
 *  - Trace-ring mechanics: capacity, wrap, oldest-first ordering, and
 *    the wrapped-window contract runCellTraced surfaces as
 *    traceWrapped.
 *  - Hand-built micro-programs whose bottleneck is known by
 *    construction: the attribution walk must telescope exactly (the
 *    breakdown is an accounting identity, not an estimate) and charge
 *    the dominant share to the category the program was built to
 *    stress.
 *  - Whole-kernel differential: the pure forward model re-derives the
 *    cycle count from modeled edges alone, and must land within 2% of
 *    the recorded count on a pinned ref-kernel set; the what-if walk
 *    must reproduce the recorded count exactly under an identity spec
 *    and respond monotonically to widening/narrowing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "analysis/critpath.hh"
#include "assembler/assembler.hh"
#include "sim/simulator.hh"
#include "uarch/trace.hh"
#include "workloads/suites.hh"

namespace mg {
namespace {

const SetupFn noSetup = [](Emulator &) {};

/** Traced baseline analysis of an assembled micro-program. */
CritPathSummary
analyzeAsm(const char *src, const std::string &whatIf = "")
{
    Program p = assemble(src);
    SimConfig cfg = SimConfig::baseline();
    cfg.critpath = true;
    cfg.whatIf = whatIf;
    return runCellTraced(p, nullptr, cfg, noSetup);
}

std::uint64_t
breakdownSum(const CritPathSummary &s)
{
    std::uint64_t sum = 0;
    for (int c = 0; c < cpCatCount; ++c)
        sum += s.breakdown[c];
    return sum;
}

// ------------------------------------------------------------------
// Trace ring.
// ------------------------------------------------------------------

TEST(TraceRing, KeepsNewestEventsOldestFirst)
{
    TraceBuffer tb(4);
    EXPECT_EQ(tb.capacity(), 4u);
    for (std::uint64_t s = 0; s < 3; ++s) {
        TraceEvent e;
        e.seq = s;
        tb.push(e);
    }
    EXPECT_EQ(tb.size(), 3u);
    EXPECT_EQ(tb.totalPushed(), 3u);
    EXPECT_FALSE(tb.wrapped());
    EXPECT_EQ(tb.at(0).seq, 0u);
    EXPECT_EQ(tb.at(2).seq, 2u);

    for (std::uint64_t s = 3; s < 11; ++s) {
        TraceEvent e;
        e.seq = s;
        tb.push(e);
    }
    EXPECT_EQ(tb.size(), 4u);
    EXPECT_EQ(tb.totalPushed(), 11u);
    EXPECT_TRUE(tb.wrapped());
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(tb.at(i).seq, 7 + i) << "slot " << i;

    tb.clear();
    EXPECT_EQ(tb.size(), 0u);
    EXPECT_FALSE(tb.wrapped());
}

TEST(TraceRing, ZeroCapacityDegradesToOne)
{
    TraceBuffer tb(0);
    EXPECT_EQ(tb.capacity(), 1u);
    TraceEvent e;
    e.seq = 42;
    tb.push(e);
    tb.push(e);
    EXPECT_EQ(tb.size(), 1u);
    EXPECT_TRUE(tb.wrapped());
}

TEST(TraceRing, StageDeltaAccessors)
{
    TraceEvent e;
    e.fetchAt = 100;
    e.dispatchD = 8;
    e.issueD = 10;
    e.completeD = 13;
    e.commitD = 15;
    EXPECT_EQ(e.dispatchAt(), 108u);
    EXPECT_EQ(e.issueAt(), 110u);
    EXPECT_EQ(e.completeAt(), 113u);
    EXPECT_EQ(e.commitAt(), 115u);
    EXPECT_EQ(e.memExecAt(), 0u);   // 0 delta = no memory access
    e.memExecD = 12;
    EXPECT_EQ(e.memExecAt(), 112u);
}

TEST(TraceRing, EmptyTraceYieldsAbsentSummary)
{
    TraceBuffer tb(16);
    CritPathSummary s = analyzeCritPath(tb, CoreConfig{});
    EXPECT_FALSE(s.present);
}

// ------------------------------------------------------------------
// Micro-programs with a bottleneck known by construction.
// ------------------------------------------------------------------

TEST(CritPathMicro, SerialMultiplyChainIsExecutionBound)
{
    // Every mulq feeds the next, so the run is one long latency chain:
    // execution latency plus register-dependence wakeup must own the
    // large majority of all cycles.
    CritPathSummary s = analyzeAsm(R"(
        .text
main:
        li r1, 3
        li r10, 300
chain:
        mulq r1, r1, r1
        mulq r1, r1, r1
        mulq r1, r1, r1
        mulq r1, r1, r1
        subq r10, 1, r10
        bgt r10, chain
        halt
    )");
    ASSERT_TRUE(s.present) << s.error;
    EXPECT_TRUE(s.error.empty()) << s.error;
    EXPECT_EQ(breakdownSum(s), s.actualCycles);
    EXPECT_FALSE(s.traceWrapped);
    EXPECT_GT(s.tracedSlots, 1500u);
    double chainShare = s.share(CpCat::exec) + s.share(CpCat::data);
    EXPECT_GT(chainShare, 0.60)
        << "exec " << s.share(CpCat::exec)
        << " data " << s.share(CpCat::data);
    EXPECT_LT(s.share(CpCat::memory), 0.05);
}

TEST(CritPathMicro, IndependentStreamIsBandwidthBound)
{
    // Six independent single-cycle ops per loop body saturate the
    // 6-wide machine: in-order supply and retirement bandwidth
    // (fetch/window/commit), not data dependences, must dominate.
    CritPathSummary s = analyzeAsm(R"(
        .text
main:
        li r10, 300
indep:
        addq r1, 1, r2
        addq r1, 2, r3
        addq r1, 3, r4
        addq r1, 4, r5
        addq r1, 5, r6
        addq r1, 6, r7
        subq r10, 1, r10
        bgt r10, indep
        halt
    )");
    ASSERT_TRUE(s.present) << s.error;
    EXPECT_EQ(breakdownSum(s), s.actualCycles);
    double bwShare = s.share(CpCat::fetch) + s.share(CpCat::window) +
        s.share(CpCat::commit);
    double chainShare = s.share(CpCat::exec) + s.share(CpCat::data);
    EXPECT_GT(bwShare, 0.50)
        << "fetch " << s.share(CpCat::fetch)
        << " window " << s.share(CpCat::window)
        << " commit " << s.share(CpCat::commit);
    EXPECT_LT(chainShare, 0.35);
}

TEST(CritPathMicro, PointerChaseIsMemoryBound)
{
    // A ring of pointers chased serially: every load's address comes
    // from the previous load, so L1 latency accumulates along one
    // unbreakable chain and the memory category must dominate.
    CritPathSummary s = analyzeAsm(R"(
        .text
main:
        lda r1, buf
        li r2, 64             # nodes in the ring
        mov r1, r3
init:
        addq r3, 64, r4
        stq r4, 0(r3)
        mov r4, r3
        subq r2, 1, r2
        bgt r2, init
        stq r1, 0(r3)         # close the ring
        li r5, 2000
        mov r1, r6
chase:
        ldq r6, 0(r6)
        subq r5, 1, r5
        bgt r5, chase
        halt
        .data
buf:    .space 4224           # 65 nodes x 64 B stride
    )");
    ASSERT_TRUE(s.present) << s.error;
    EXPECT_EQ(breakdownSum(s), s.actualCycles);
    EXPECT_GT(s.share(CpCat::memory), 0.40)
        << "memory " << s.share(CpCat::memory);
}

TEST(CritPathMicro, DataDependentBranchesChargeBpred)
{
    // An LFSR drives unlearnable branch directions; mispredict
    // refetch bubbles must show up under bpred (this core's resolve
    // path costs a single fetch bubble per direction mispredict, so
    // the share is real but modest).
    CritPathSummary s = analyzeAsm(R"(
        .text
main:
        li r1, 0xace1
        li r10, 1500
lfsr:
        and r1, 1, r2
        srl r1, 1, r1
        beq r2, even
        li r3, 0xb400
        xor r1, r3, r1
even:
        subq r10, 1, r10
        bgt r10, lfsr
        halt
    )");
    ASSERT_TRUE(s.present) << s.error;
    EXPECT_EQ(breakdownSum(s), s.actualCycles);
    EXPECT_GT(s.breakdown[static_cast<int>(CpCat::bpred)], 100u);
}

// ------------------------------------------------------------------
// Whole-kernel walks: telescoping, differential bound, what-if.
// ------------------------------------------------------------------

TEST(CritPath, BreakdownTelescopesOnRefKernels)
{
    // The attribution identity must hold on real kernels under both
    // machine shapes (the mini-graph config exercises the handle/mg
    // edges), and a traced re-run must never perturb the timing
    // model: its stats stay bit-identical to the untraced cell.
    for (const char *name : {"gzip", "adpcm.dec", "crc"}) {
        BoundKernel bk = bindKernel(findKernel(name));
        for (SimConfig cfg :
             {SimConfig::baseline(), SimConfig::intMemMg()}) {
            cfg.critpath = true;
            CoreStats plain;
            const PreparedMg *prep = nullptr;
            PreparedMg prepStore;
            if (cfg.useMiniGraphs) {
                BlockProfile prof = collectProfile(
                    *bk.program, bk.setup, cfg.profileBudget);
                prepStore = prepareMiniGraphs(*bk.program, prof,
                                              cfg.policy, cfg.machine,
                                              cfg.compress);
                prep = &prepStore;
            }
            plain = runCell(*bk.program, prep, cfg, bk.setup);
            CritPathSummary s =
                runCellTraced(*bk.program, prep, cfg, bk.setup);
            ASSERT_TRUE(s.present) << name << "/" << cfg.name;
            EXPECT_TRUE(s.error.empty()) << s.error;
            EXPECT_EQ(breakdownSum(s), s.actualCycles)
                << name << "/" << cfg.name;
            // actualCycles is the first-fetch-to-last-commit span:
            // it excludes only the cold-start prologue before the
            // first fetch (icache refill), never exceeds the run's
            // cycle count, and tracks it closely — a drift here means
            // the traced run perturbed the timing model.
            EXPECT_LE(s.actualCycles, plain.cycles)
                << name << "/" << cfg.name;
            EXPECT_LE(plain.cycles - s.actualCycles, 1000u)
                << name << "/" << cfg.name
                << ": traced span drifted from the untraced run";
            EXPECT_EQ(s.tracedSlots, plain.committedSlots);
            EXPECT_EQ(s.tracedWork, plain.committedWork);
            EXPECT_GT(s.modeledCycles, 0u);
            if (cfg.useMiniGraphs) {
                EXPECT_GT(s.breakdown[static_cast<int>(CpCat::mg)], 0u)
                    << name << ": mini-graph config attributed no "
                              "cycles to handles";
            }
        }
    }
}

TEST(CritPath, BoundedRingAnalyzesTheNewestWindow)
{
    BoundKernel bk = bindKernel(findKernel("crc"));
    SimConfig cfg = SimConfig::baseline();
    cfg.critpath = true;
    cfg.traceDepth = 2048;
    CritPathSummary s = runCellTraced(*bk.program, nullptr, cfg,
                                      bk.setup);
    ASSERT_TRUE(s.present);
    EXPECT_TRUE(s.traceWrapped);
    EXPECT_EQ(s.tracedSlots, 2048u);
    // The identity holds over the window's own span too.
    EXPECT_EQ(breakdownSum(s), s.actualCycles);
}

class CritPathDifferential : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CritPathDifferential, ForwardModelWithinTwoPercent)
{
    // The acceptance bound: the pure forward model — recorded
    // execution latencies, modeled structure, no recorded stage
    // times — must re-derive the cycle count within 2% on this
    // pinned ref-kernel set (all measured well inside 1%; see
    // docs/EXPERIMENTS.md for the corpus-wide table).
    BoundKernel bk = bindKernel(findKernel(GetParam()));
    SimConfig cfg = SimConfig::baseline();
    cfg.critpath = true;
    CritPathSummary s = runCellTraced(*bk.program, nullptr, cfg,
                                      bk.setup);
    ASSERT_TRUE(s.present);
    double err = std::abs(static_cast<double>(s.modeledCycles) -
                          static_cast<double>(s.actualCycles)) /
        static_cast<double>(s.actualCycles);
    EXPECT_LE(err, 0.02)
        << GetParam() << ": modeled " << s.modeledCycles
        << " vs actual " << s.actualCycles;
}

const char *const differentialKernels[] = {
    "twolf", "parser", "mcf", "drr", "gap", "adpcm.enc", "gzip",
    "stringsearch",
};

INSTANTIATE_TEST_SUITE_P(PinnedKernels, CritPathDifferential,
                         ::testing::ValuesIn(differentialKernels),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

TEST(CritPathWhatIf, IdentitySpecReproducesRecordedCycles)
{
    // The what-if walk is residual-anchored: re-weighting with the
    // traced configuration's own parameters must reproduce the
    // recorded cycle count exactly, not approximately.
    BoundKernel bk = bindKernel(findKernel("gzip"));
    SimConfig cfg = SimConfig::baseline();
    cfg.critpath = true;
    CoreConfig &c = cfg.core;
    std::string identity = "fetchwidth=" +
        std::to_string(c.fetchWidth) +
        ",renamewidth=" + std::to_string(c.renameWidth) +
        ",commitwidth=" + std::to_string(c.commitWidth) +
        ",robsize=" + std::to_string(c.robSize) +
        ",fetchqueue=" + std::to_string(c.fetchQueueSize) +
        ",frontend=" + std::to_string(c.frontendDepth) +
        ",regreadlat=" + std::to_string(c.regReadLat) +
        ",sched=" + std::to_string(c.schedulerCycles) +
        ",l1dlat=" + std::to_string(c.mem.l1dLat);
    cfg.whatIf = identity;
    CritPathSummary s = runCellTraced(*bk.program, nullptr, cfg,
                                      bk.setup);
    ASSERT_TRUE(s.present);
    EXPECT_TRUE(s.error.empty()) << s.error;
    EXPECT_EQ(s.whatIf, identity);
    EXPECT_EQ(s.whatIfCycles, s.actualCycles);
}

TEST(CritPathWhatIf, MonotoneUnderWideningAndNarrowing)
{
    // Every node time is a max() over monotone candidates, so
    // widening a resource or shortening a latency can never lengthen
    // the predicted path, and narrowing can never shorten it.
    BoundKernel bk = bindKernel(findKernel("adpcm.dec"));
    SimConfig cfg = SimConfig::baseline();
    cfg.critpath = true;

    auto whatIfCycles = [&](const std::string &spec) {
        SimConfig c = cfg;
        c.whatIf = spec;
        CritPathSummary s = runCellTraced(*bk.program, nullptr, c,
                                          bk.setup);
        EXPECT_TRUE(s.present && s.error.empty())
            << spec << ": " << s.error;
        return s.whatIfCycles;
    };

    SimConfig base = cfg;
    CritPathSummary rec = runCellTraced(*bk.program, nullptr, base,
                                        bk.setup);
    ASSERT_TRUE(rec.present);

    // regreadlat is the bypass overlap a consumer hides under its
    // producer's completion, so *raising* it widens (more overlap)
    // and lowering it narrows — opposite to a plain latency.
    for (const char *widen :
         {"fetchwidth=12", "renamewidth=12", "commitwidth=12",
          "robsize=512", "fetchqueue=96", "frontend=2", "regreadlat=4",
          "l1dlat=1", "fetchwidth=12,robsize=512,l1dlat=1"}) {
        EXPECT_LE(whatIfCycles(widen), rec.actualCycles) << widen;
    }
    for (const char *narrow :
         {"fetchwidth=2", "renamewidth=2", "commitwidth=2",
          "robsize=16", "fetchqueue=4", "frontend=16", "regreadlat=0",
          "l1dlat=8"}) {
        EXPECT_GE(whatIfCycles(narrow), rec.actualCycles) << narrow;
    }
    // A strict narrowing must actually bite: a 2-wide frontend cannot
    // sustain this kernel's recorded throughput.
    EXPECT_GT(whatIfCycles("fetchwidth=2"), rec.actualCycles);
}

TEST(CritPathWhatIf, SpecParsing)
{
    CpParams p;
    std::string err;
    EXPECT_TRUE(applyWhatIf(p, "fetchwidth=8,l1dlat=4", &err)) << err;
    EXPECT_EQ(p.fetchWidth, 8);
    EXPECT_EQ(p.l1dLat, 4);

    for (const char *bad :
         {"notaknob=3", "fetchwidth", "fetchwidth=", "fetchwidth=abc",
          "fetchwidth=0", "fetchwidth=-2", "=4", ","}) {
        CpParams q;
        std::string e;
        EXPECT_FALSE(applyWhatIf(q, bad, &e)) << bad;
        EXPECT_FALSE(e.empty()) << bad;
    }
}

TEST(CritPathWhatIf, MalformedSpecKeepsBreakdownValid)
{
    // A bad --whatif must not poison the rest of the analysis: the
    // summary is present, carries the parse error, and the breakdown
    // and forward model are still valid.
    CritPathSummary s = analyzeAsm(R"(
        .text
main:
        li r10, 50
loop:
        addq r1, 1, r1
        subq r10, 1, r10
        bgt r10, loop
        halt
    )",
                                   "bogus=1");
    ASSERT_TRUE(s.present);
    EXPECT_FALSE(s.error.empty());
    EXPECT_EQ(s.whatIfCycles, 0u);
    EXPECT_EQ(breakdownSum(s), s.actualCycles);
    EXPECT_GT(s.modeledCycles, 0u);
}

TEST(CritPathWhatIf, AnalyzerAnswersManySpecsFromOneTrace)
{
    // The reusable analyzer is the cheap-question API: one traced run,
    // one graph build, then every spec is a single walk. Its answers
    // must match the one-shot wrapper spec for spec, and a bad spec
    // must fail without poisoning later questions.
    BoundKernel bk = bindKernel(findKernel("gzip"));
    SimConfig cfg = SimConfig::baseline();
    TraceBuffer trace;
    Core core(*bk.program, nullptr, cfg.core);
    core.setTrace(&trace);
    bk.setup(core.oracle());
    core.run();

    CritPathAnalyzer an(trace, cfg.core);
    ASSERT_TRUE(an.summary().present);
    EXPECT_EQ(breakdownSum(an.summary()),
              an.summary().actualCycles);

    for (const char *spec :
         {"robsize=256", "fetchwidth=2", "l1dlat=6",
          "fetchwidth=12,robsize=512"}) {
        std::string err;
        std::uint64_t cycles = an.whatIf(spec, &err);
        EXPECT_TRUE(err.empty()) << spec << ": " << err;
        CritPathSummary one = analyzeCritPath(trace, cfg.core, spec);
        EXPECT_EQ(cycles, one.whatIfCycles) << spec;
    }

    std::string err;
    EXPECT_EQ(an.whatIf("bogus=1", &err), 0u);
    EXPECT_FALSE(err.empty());
    std::uint64_t again = an.whatIf("robsize=256", &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_EQ(again,
              analyzeCritPath(trace, cfg.core, "robsize=256")
                  .whatIfCycles);
}

} // namespace
} // namespace mg
