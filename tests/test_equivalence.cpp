/**
 * @file
 * End-to-end correctness: for every kernel, the handle-bearing
 * program (selection + rewrite + MGT) must produce exactly the same
 * validated outputs as the original, under both the nop-padded and
 * compressed layouts, for integer-only and integer-memory policies.
 * This exercises enumeration, legality, selection, template
 * construction, the rewriter, and the emulator's sequencer semantics
 * in one sweep.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/suites.hh"

namespace mg {
namespace {

struct Combo
{
    const char *kernel;
    bool memory;        ///< integer-memory mini-graphs allowed
    bool compress;
};

class Equivalence : public ::testing::TestWithParam<Combo>
{
};

TEST_P(Equivalence, RewrittenProgramMatchesOriginal)
{
    const Combo &c = GetParam();
    BoundKernel bk = bindKernel(findKernel(c.kernel));

    BlockProfile prof = collectProfile(*bk.program, bk.setup, 400000);

    SelectionPolicy policy;
    policy.allowMemory = c.memory;
    MgtMachine machine;
    PreparedMg prep = prepareMiniGraphs(*bk.program, prof, policy,
                                        machine, c.compress);

    // Mini-graphs must actually be found (the point of the test).
    EXPECT_GT(prep.selection.instances.size(), 0u)
        << c.kernel << ": no mini-graphs selected";

    Emulator emu(prep.program, &prep.table);
    bk.kernel->setup(emu, 0);
    EmuResult r = emu.run(100000000ull);
    ASSERT_EQ(r.stop, StopReason::Halted)
        << c.kernel << " (rewritten) did not halt";
    EXPECT_TRUE(bk.kernel->validate(emu, 0))
        << c.kernel << " (rewritten) produced wrong outputs";

    // The rewritten program must do the same architectural work
    // (handles expand to their constituent instructions; pad nops
    // carry no work).
    Emulator ref(*bk.program);
    bk.kernel->setup(ref, 0);
    EmuResult rr = ref.run(100000000ull);
    EXPECT_EQ(r.dynWork, rr.dynWork)
        << c.kernel << ": constituent work count changed";
}

std::vector<Combo>
makeCombos()
{
    std::vector<Combo> out;
    for (const Kernel &k : allKernels()) {
        out.push_back({k.name, false, false});
        out.push_back({k.name, true, false});
        out.push_back({k.name, true, true});
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, Equivalence, ::testing::ValuesIn(makeCombos()),
    [](const auto &info) {
        std::string n = info.param.kernel;
        for (char &c : n) {
            if (c == '.')
                c = '_';
        }
        n += info.param.memory ? "_intmem" : "_int";
        if (info.param.compress)
            n += "_compress";
        return n;
    });

} // namespace
} // namespace mg
