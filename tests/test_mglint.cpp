/**
 * @file
 * Self-test for mglint, the determinism-contract linter.
 *
 * Links the rule engine (mglint_core) directly and lints the committed
 * fixture corpus under tools/mglint/fixtures: every known-bad fixture
 * must be flagged at the expected line by the expected rule, the
 * known-good fixture must pass, allow annotations must suppress (and
 * be counted), and the serialize/deserialize parity rule must catch
 * the deliberately drifted fixture. Finally the live src/ tree must
 * lint clean — that last check IS the determinism contract's
 * enforcement point, so it runs in the unit tier.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hh"

namespace {

std::string
fixture(const std::string &name)
{
    return std::string(MGLINT_FIXTURE_DIR) + "/" + name;
}

mglint::LintResult
lintFixture(const std::string &name)
{
    return mglint::lintFiles({fixture(name)});
}

/// Findings for one rule, as (basename suffix match) line numbers.
std::vector<int>
linesFor(const mglint::LintResult &r, const std::string &rule)
{
    std::vector<int> lines;
    for (const mglint::Finding &f : r.findings)
        if (f.rule == rule)
            lines.push_back(f.line);
    return lines;
}

TEST(MglintCatalog, HasAllFiveRules)
{
    auto cat = mglint::ruleCatalog();
    std::vector<std::string> ids;
    for (const auto &[id, desc] : cat) {
        ids.push_back(id);
        EXPECT_FALSE(desc.empty()) << id;
    }
    std::vector<std::string> want = {"banned-rand", "ptr-key",
                                     "unordered-iter", "serial-parity",
                                     "format-version"};
    for (const std::string &w : want)
        EXPECT_NE(std::find(ids.begin(), ids.end(), w), ids.end())
            << "missing rule " << w;
    EXPECT_EQ(ids.size(), want.size());
}

TEST(MglintBad, RandFixtureFlagsEveryBannedSource)
{
    auto r = lintFixture("bad_rand.cc");
    // std::random_device, rand(), srand(), time(), clock() — one
    // finding per line, nothing else.
    EXPECT_EQ(linesFor(r, "banned-rand"),
              (std::vector<int>{9, 10, 11, 12, 13}));
    EXPECT_EQ(r.findings.size(), 5u);
    EXPECT_EQ(r.suppressed, 0);
}

TEST(MglintBad, PtrKeyFixtureFlagsMapAndSet)
{
    auto r = lintFixture("bad_ptrkey.cc");
    EXPECT_EQ(linesFor(r, "ptr-key"), (std::vector<int>{12, 13}));
    EXPECT_EQ(r.findings.size(), 2u);
}

TEST(MglintBad, UnorderedIterFixtureFlagsRangeForAndIteratorWalk)
{
    auto r = lintFixture("bad_unordered_iter.cc");
    EXPECT_EQ(linesFor(r, "unordered-iter"), (std::vector<int>{17, 19}));
    EXPECT_EQ(r.findings.size(), 2u);
}

TEST(MglintBad, SerialParityCatchesDriftedRecord)
{
    auto r = lintFixture("bad_serial_drift.cc");
    ASSERT_EQ(r.findings.size(), 1u);
    const mglint::Finding &f = r.findings[0];
    EXPECT_EQ(f.rule, "serial-parity");
    // Both directions of drift are named: a member serialized but
    // never restored, and one restored but never serialized. The
    // clean SteadyRecord pair in the same file must NOT fire.
    EXPECT_NE(f.message.find("DriftRecord"), std::string::npos);
    EXPECT_NE(f.message.find("epoch"), std::string::npos);
    EXPECT_NE(f.message.find("spare"), std::string::npos);
    EXPECT_EQ(f.message.find("SteadyRecord"), std::string::npos);
}

TEST(MglintBad, FormatVersionRequiredNextToRecordMagic)
{
    auto r = lintFixture("bad_format_version.cc");
    ASSERT_EQ(r.findings.size(), 1u);
    EXPECT_EQ(r.findings[0].rule, "format-version");
    EXPECT_EQ(r.findings[0].line, 5);
    EXPECT_NE(r.findings[0].message.find("blobMagic"),
              std::string::npos);
}

TEST(MglintGood, IdiomaticFixturePassesClean)
{
    // good.cc exercises the sorted-view idiom, a value-keyed ordered
    // map, a magic WITH a format version, and one annotated
    // container-copy — zero findings, exactly one suppression.
    auto r = lintFixture("good.cc");
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 1);
}

TEST(MglintAllow, AnnotationsSuppressAndAreCounted)
{
    // allowed.cc holds one violation per annotatable rule, each with
    // an allow comment: zero findings, three suppressions.
    auto r = lintFixture("allowed.cc");
    EXPECT_TRUE(r.findings.empty());
    EXPECT_EQ(r.suppressed, 3);
}

TEST(MglintCorpus, CrossFileStateCoversWholeFixtureSet)
{
    // Lint the whole fixture directory in one call, the way the CLI
    // does: per-fixture counts must add up (11 findings, 4
    // suppressions over 7 files), and the report must be sorted by
    // (file, line) so reruns diff clean.
    auto files = mglint::collectSources({MGLINT_FIXTURE_DIR});
    EXPECT_EQ(files.size(), 7u);
    EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
    auto r = mglint::lintFiles(files);
    EXPECT_EQ(r.filesScanned, 7);
    EXPECT_EQ(r.findings.size(), 11u);
    EXPECT_EQ(r.suppressed, 4);
    auto byPos = [](const mglint::Finding &a, const mglint::Finding &b) {
        return std::tie(a.file, a.line) <= std::tie(b.file, b.line);
    };
    for (std::size_t i = 1; i < r.findings.size(); ++i)
        EXPECT_TRUE(byPos(r.findings[i - 1], r.findings[i]));
}

TEST(MglintJson, ReportCarriesCountsAndFindings)
{
    auto r = lintFixture("bad_format_version.cc");
    std::string j = mglint::findingsJson(r);
    EXPECT_NE(j.find("\"files_scanned\": 1"), std::string::npos);
    EXPECT_NE(j.find("\"rule\": \"format-version\""), std::string::npos);
    EXPECT_NE(j.find("\"line\": 5"), std::string::npos);
}

TEST(MglintContract, LiveSourceTreeLintsClean)
{
    // The enforcement point: the shipped src/ tree must carry zero
    // unsuppressed findings. If this fails, either fix the new code
    // or annotate it with a justified mglint:allow.
    auto files = mglint::collectSources({MGLINT_SRC_DIR});
    ASSERT_GT(files.size(), 10u);
    auto r = mglint::lintFiles(files);
    for (const mglint::Finding &f : r.findings)
        ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
}

} // namespace
