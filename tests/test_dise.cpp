/**
 * @file
 * DISE unit tests: pattern matching, parameter substitution, codeword
 * expansion, MGTT behaviour, and MGPP compilation of replacement
 * sequences to MGT templates (paper Section 5).
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "common/logging.hh"
#include "dise/mgpp.hh"
#include "emu/emulator.hh"

namespace mg {
namespace {

/** The paper's first example production:
 *  <addl T.RS1,2,T.RD; cmplt T.RD,T.RS2,$d0; bne $d0,disp>. */
Production
branchProduction(std::int64_t codeword, std::int64_t disp)
{
    Production p;
    p.name = "addl-cmplt-bne";
    p.pattern.aware = true;
    p.pattern.codewordId = codeword;
    p.replacement = {
        {Op::ADDL, ParamReg::rs1(), ParamReg::none(), ParamReg::rd(),
         2, true, false},
        {Op::CMPLT, ParamReg::rd(), ParamReg::rs2(), ParamReg::d(0), 0,
         false, false},
        {Op::BNE, ParamReg::d(0), ParamReg::none(), ParamReg::none(),
         disp, false, false},
    };
    return p;
}

/** The paper's second example:
 *  <ldq $d0,16(T.RS1); srl $d0,14,$d0; and $d0,1,T.RD>. */
Production
loadProduction(std::int64_t codeword)
{
    Production p;
    p.name = "ldq-srl-and";
    p.pattern.aware = true;
    p.pattern.codewordId = codeword;
    p.replacement = {
        {Op::LDQ, ParamReg::d(0), ParamReg::rs1(), ParamReg::none(),
         16, false, false},
        {Op::SRL, ParamReg::d(0), ParamReg::none(), ParamReg::d(0), 14,
         true, false},
        {Op::AND, ParamReg::d(0), ParamReg::none(), ParamReg::rd(), 1,
         true, false},
    };
    return p;
}

TEST(DisePattern, AwareMatchesCodewordById)
{
    Production p = branchProduction(12, 8);
    Instruction cw;
    cw.op = Op::MG;
    cw.imm = 12;
    EXPECT_TRUE(p.pattern.matches(cw));
    cw.imm = 13;
    EXPECT_FALSE(p.pattern.matches(cw));
    cw.op = Op::ADDL;
    cw.imm = 12;
    EXPECT_FALSE(p.pattern.matches(cw));
}

TEST(DiseExpand, SubstitutesParameters)
{
    DiseEngine e;
    e.addProduction(branchProduction(12, 8));
    Instruction cw;
    cw.op = Op::MG;
    cw.ra = 18;
    cw.rb = 5;
    cw.rc = 18;
    cw.imm = 12;
    auto seq = e.expand(cw);
    ASSERT_EQ(seq.size(), 3u);
    EXPECT_EQ(seq[0].op, Op::ADDL);
    EXPECT_EQ(seq[0].ra, 18);
    EXPECT_EQ(seq[0].rc, 18);
    EXPECT_EQ(seq[1].ra, 18);
    EXPECT_EQ(seq[1].rb, 5);
    EXPECT_EQ(seq[1].rc, diseReg(0));
    EXPECT_EQ(seq[2].ra, diseReg(0));
}

TEST(DiseExpand, NonMatchingPassesThrough)
{
    DiseEngine e;
    e.addProduction(branchProduction(12, 8));
    Instruction add;
    add.op = Op::ADDQ;
    auto seq = e.expand(add);
    ASSERT_EQ(seq.size(), 1u);
    EXPECT_EQ(seq[0].op, Op::ADDQ);
}

TEST(DiseExpand, TransparentUtilityKeepsOriginal)
{
    // The toy production from the paper: after every add, clear all
    // but the least-significant byte of the result.
    Production p;
    p.pattern.aware = false;
    p.pattern.op = Op::ADDQ;
    p.keepOriginalFirst = true;
    p.replacement = {{Op::AND, ParamReg::rd(), ParamReg::none(),
                      ParamReg::rd(), 0xff, true, false}};
    DiseEngine e;
    e.addProduction(p);
    Instruction add;
    add.op = Op::ADDQ;
    add.ra = 2;
    add.rb = 4;
    add.rc = 2;
    auto seq = e.expand(add);
    ASSERT_EQ(seq.size(), 2u);
    EXPECT_EQ(seq[0].op, Op::ADDQ);
    EXPECT_EQ(seq[1].op, Op::AND);
    EXPECT_EQ(seq[1].ra, 2);
    EXPECT_EQ(seq[1].rc, 2);
}

TEST(Mgpp, CompilesPaperProductions)
{
    MgppResult r1 = mgppCompile(branchProduction(12, 8));
    ASSERT_TRUE(r1.approved) << r1.reason;
    EXPECT_EQ(r1.tmpl.size(), 3);
    EXPECT_EQ(r1.tmpl.outIdx, 0);   // T.RD written by the addl
    EXPECT_EQ(r1.tmpl.insns[1].a.kind, OpndKind::M);
    EXPECT_EQ(r1.tmpl.insns[1].b.kind, OpndKind::E1);

    MgppResult r2 = mgppCompile(loadProduction(34));
    ASSERT_TRUE(r2.approved) << r2.reason;
    EXPECT_EQ(r2.tmpl.outIdx, 2);
    EXPECT_EQ(r2.tmpl.insns[0].a.kind, OpndKind::E0);
}

TEST(Mgpp, RejectsIllegalSequences)
{
    // Two memory operations.
    Production twoMem;
    twoMem.pattern.aware = true;
    twoMem.pattern.codewordId = 1;
    twoMem.replacement = {
        {Op::LDQ, ParamReg::d(0), ParamReg::rs1(), ParamReg::none(), 0,
         false, false},
        {Op::LDQ, ParamReg::rd(), ParamReg::d(0), ParamReg::none(), 0,
         false, false},
    };
    EXPECT_FALSE(mgppCompile(twoMem).approved);

    // $d read before write.
    Production uninit;
    uninit.pattern.aware = true;
    uninit.pattern.codewordId = 2;
    uninit.replacement = {
        {Op::ADDL, ParamReg::d(0), ParamReg::none(), ParamReg::rd(), 1,
         true, false},
        {Op::ADDL, ParamReg::rd(), ParamReg::none(), ParamReg::rd(), 1,
         true, false},
    };
    EXPECT_FALSE(mgppCompile(uninit).approved);

    // Non-collapsible opcode.
    Production mult;
    mult.pattern.aware = true;
    mult.pattern.codewordId = 3;
    mult.replacement = {
        {Op::MULQ, ParamReg::rs1(), ParamReg::rs2(), ParamReg::d(0), 0,
         false, false},
        {Op::ADDL, ParamReg::d(0), ParamReg::none(), ParamReg::rd(), 1,
         true, false},
    };
    EXPECT_FALSE(mgppCompile(mult).approved);

    // Transparent productions are not mini-graphs.
    Production transparent;
    transparent.pattern.aware = false;
    transparent.pattern.op = Op::ADDQ;
    transparent.replacement = {
        {Op::ADDL, ParamReg::rs1(), ParamReg::none(), ParamReg::rd(), 1,
         true, false},
        {Op::ADDL, ParamReg::rd(), ParamReg::none(), ParamReg::rd(), 1,
         true, false},
    };
    EXPECT_FALSE(mgppCompile(transparent).approved);
}

TEST(Mgpp, ProcessInstallsApprovedIntoMgtAndMgtt)
{
    DiseEngine e;
    e.addProduction(branchProduction(12, 8));
    e.addProduction(loadProduction(34));
    MgTable table;
    Mgtt mgtt;
    int n = mgppProcess(e, MgtMachine{}, table, mgtt);
    EXPECT_EQ(n, 2);
    EXPECT_EQ(table.size(), 2u);
    const MgttEntry *t12 = mgtt.find(12);
    ASSERT_NE(t12, nullptr);
    EXPECT_TRUE(t12->preProcessed);
    EXPECT_TRUE(t12->approved);
    EXPECT_TRUE(table.contains(t12->mgid));
    EXPECT_EQ(mgtt.find(99), nullptr);   // miss -> DISE would expand
}

TEST(DiseEndToEnd, HandleAndExpansionAgree)
{
    // Execute a codeword both ways: as a handle through the MGPP-
    // compiled MGT, and expanded in line to singletons. Results must
    // be identical (paper: "a processor can always expand a
    // mini-graph it doesn't understand").
    DiseEngine e;
    e.addProduction(loadProduction(34));
    MgTable table;
    Mgtt mgtt;
    mgppProcess(e, MgtMachine{}, table, mgtt);
    MgId id = mgtt.find(34)->mgid;

    std::string src = strfmt(R"(
        .text
main:
        lda r4, buf
        mg r4, r31, r17, %d
        stq r17, out
        halt
        .data
buf:    .space 8
        .quad 0
out:    .space 8
    )", 34);
    Program p = assemble(src);
    // Seed memory so the load reads something interesting.
    // Handle path: MGID 34 lives in the table at `id`; rewrite the
    // handle immediate to the installed id.
    Program hp = p;
    for (Instruction &in : hp.text) {
        if (in.isHandle())
            in.imm = id;
    }
    Emulator h(hp, &table);
    h.memory().write(p.symbol("buf") + 16, 0xABCD1234u << 10, 8);
    h.run();

    // Expansion path.
    Program xp = e.expandProgram(p);
    Emulator x(xp);
    x.memory().write(xp.symbol("buf") + 16, 0xABCD1234u << 10, 8);
    x.run();

    EXPECT_EQ(h.memory().read(p.symbol("out"), 8),
              x.memory().read(xp.symbol("out"), 8));
}

TEST(MgttTest, CapacityBound)
{
    Mgtt mgtt(2);
    MgttEntry e;
    e.preProcessed = true;
    EXPECT_TRUE(mgtt.install(1, e));
    EXPECT_TRUE(mgtt.install(2, e));
    EXPECT_FALSE(mgtt.install(3, e));   // full
    EXPECT_TRUE(mgtt.install(1, e));    // update in place is fine
}

} // namespace
} // namespace mg
