/**
 * @file
 * Unit tests for the back-end building blocks: physical register
 * file, rename map, ROB, issue queue, LSQ, sliding window, ALU
 * pipelines, sequencers, and the FU pool.
 */

#include <gtest/gtest.h>

#include "uarch/alu_pipeline.hh"
#include "uarch/issue_queue.hh"
#include "uarch/fu_pool.hh"
#include "uarch/lsq.hh"
#include "uarch/regfile.hh"
#include "uarch/rename.hh"
#include "uarch/rob.hh"
#include "uarch/sequencer.hh"
#include "uarch/sliding_window.hh"

namespace mg {
namespace {

TEST(RegFile, AllocFreeInvariants)
{
    PhysRegFile rf(164, 64);
    EXPECT_EQ(rf.freeCount(), 100);
    std::vector<PhysReg> got;
    for (int i = 0; i < 100; ++i) {
        PhysReg r = rf.alloc();
        ASSERT_NE(r, physNone);
        got.push_back(r);
    }
    EXPECT_EQ(rf.alloc(), physNone);    // exhausted
    for (PhysReg r : got)
        rf.free(r);
    EXPECT_EQ(rf.freeCount(), 100);
    EXPECT_EQ(rf.peakInFlight(), 100);
}

TEST(RegFile, ReadyTimes)
{
    PhysRegFile rf(68, 64);
    PhysReg r = rf.alloc();
    rf.markPending(r);
    EXPECT_FALSE(rf.readyForIssue(r, 1000));
    rf.setTimes(r, 10, 12);
    EXPECT_FALSE(rf.readyForIssue(r, 9));
    EXPECT_TRUE(rf.readyForIssue(r, 10));
    EXPECT_EQ(rf.valueAt(r), 12u);
    EXPECT_TRUE(rf.readyForIssue(physNone, 0));   // no operand
}

TEST(RenameMapTest, RenameAndRestore)
{
    RenameMap m;
    EXPECT_EQ(m.lookup(5), 5);
    PhysReg prev = m.rename(5, 100);
    EXPECT_EQ(prev, 5);
    EXPECT_EQ(m.lookup(5), 100);
    m.restore(5, prev);
    EXPECT_EQ(m.lookup(5), 5);
    EXPECT_EQ(m.lookup(regZero), physNone);
    EXPECT_EQ(m.lookup(regNone), physNone);
}

TEST(RobTest, FifoAndSquash)
{
    Rob rob(4);
    DynInst a, b, c;
    a.seq = 1;
    b.seq = 2;
    c.seq = 3;
    rob.push(&a);
    rob.push(&b);
    rob.push(&c);
    EXPECT_EQ(rob.size(), 3);
    EXPECT_EQ(rob.head(), &a);
    auto gone = rob.squashFrom(2);
    ASSERT_EQ(gone.size(), 2u);
    EXPECT_EQ(gone[0], &c);     // youngest first
    EXPECT_EQ(gone[1], &b);
    EXPECT_EQ(rob.size(), 1);
    rob.popHead();
    EXPECT_TRUE(rob.empty());
}

TEST(IssueQueueTest, CapacityAndRemoval)
{
    PhysRegFile regs(8, 4);
    IssueQueue iq(2, 8);
    DynInst a, b;
    a.seq = 1;
    b.seq = 2;
    iq.insert(&a, regs, nullptr, 0);
    EXPECT_FALSE(iq.full());
    iq.insert(&b, regs, nullptr, 0);
    EXPECT_TRUE(iq.full());
    iq.markIssued(&a);
    EXPECT_EQ(iq.size(), 1);
    iq.squashFrom(2);
    EXPECT_EQ(iq.size(), 0);
}

TEST(IssueQueueTest, WakeupDrivenReadiness)
{
    PhysRegFile regs(8, 4);
    IssueQueue iq(4, 8);

    // Producer allocates p; its consumer waits on the consumer list.
    PhysReg p = regs.alloc();
    ASSERT_NE(p, physNone);
    regs.markPending(p);
    DynInst c;
    c.seq = 1;
    c.srcPhys[0] = p;
    iq.insert(&c, regs, nullptr, 0);
    iq.beginSelect(0);
    EXPECT_EQ(iq.readyCount(), 0);
    EXPECT_TRUE(iq.quietAt(0));

    // Producer issues at cycle 2, ready for consumers at cycle 5.
    regs.setTimes(p, 5, 5);
    iq.wakeReg(p, regs, 2);
    iq.beginSelect(2);
    EXPECT_EQ(iq.readyCount(), 0);     // parked until cycle 5
    EXPECT_TRUE(iq.quietAt(2));
    EXPECT_EQ(iq.nextWakeAt(2), 5u);

    iq.beginSelect(5);
    ASSERT_EQ(iq.readyCount(), 1);
    EXPECT_EQ(iq.readyFirst(), &c);
    EXPECT_FALSE(iq.quietAt(5));

    // A later revision (e.g. a load miss) re-parks it on requeue.
    regs.setTimes(p, 9, 9);
    iq.requeueNotReady(&c, regs, 5);
    iq.beginSelect(6);
    EXPECT_EQ(iq.readyCount(), 0);
    iq.beginSelect(9);
    ASSERT_EQ(iq.readyCount(), 1);
    iq.markIssued(&c);
    EXPECT_EQ(iq.size(), 0);
}

DynInst
memInst(std::uint64_t seq, Addr addr, int bytes, bool store,
        bool done = true)
{
    DynInst d;
    d.seq = seq;
    d.isLoadKind = !store;
    d.isStoreKind = store;
    d.memDone = done;
    d.rec.memAddr = addr;
    d.rec.memBytes = bytes;
    // The LSQ scans read the DynInst-resident operand copies the
    // fetch path maintains.
    d.memAddr = addr;
    d.memBytes = bytes;
    return d;
}

TEST(LsqTest, ForwardingPicksYoungestOlderStore)
{
    Lsq lsq(8);
    DynInst s1 = memInst(1, 0x100, 8, true);
    DynInst s2 = memInst(2, 0x100, 8, true);
    DynInst s3 = memInst(3, 0x200, 8, true);
    DynInst ld = memInst(5, 0x100, 8, false);
    lsq.insertStore(&s1);
    lsq.insertStore(&s2);
    lsq.insertStore(&s3);
    lsq.insertLoad(&ld);
    EXPECT_EQ(lsq.forwardingStore(&ld), &s2);
}

TEST(LsqTest, PartialOverlapCountsAsForwardable)
{
    Lsq lsq(8);
    DynInst st = memInst(1, 0x100, 8, true);
    DynInst ld = memInst(2, 0x104, 4, false);
    lsq.insertStore(&st);
    lsq.insertLoad(&ld);
    EXPECT_EQ(lsq.forwardingStore(&ld), &st);
}

TEST(LsqTest, ViolationFindsOldestYoungerLoad)
{
    Lsq lsq(8);
    DynInst st = memInst(3, 0x100, 8, true);
    DynInst l1 = memInst(5, 0x100, 4, false, true);
    DynInst l2 = memInst(7, 0x104, 4, false, true);
    DynInst l3 = memInst(2, 0x100, 4, false, true);   // older: immune
    lsq.insertLoad(&l3);
    lsq.insertLoad(&l1);
    lsq.insertLoad(&l2);
    EXPECT_EQ(lsq.violatingLoad(&st), &l1);
    // Loads that have not executed cannot violate.
    l1.memDone = false;
    l2.memDone = false;
    EXPECT_EQ(lsq.violatingLoad(&st), nullptr);
}

TEST(SlidingWindowTest, ReserveAndConflict)
{
    WindowResources res;
    res.intAlu = 1;
    SlidingWindow w(res, 16);
    std::vector<FuKind> bmp = {FuKind::None, FuKind::IntAlu,
                               FuKind::IntAlu};
    EXPECT_FALSE(w.conflicts(bmp, 100));
    w.reserve(bmp, 100);
    // Same map again: the single ALU at cycles 102-103 is taken.
    EXPECT_TRUE(w.conflicts(bmp, 100));
    // One cycle later the maps interleave at 103: still conflicting.
    EXPECT_TRUE(w.conflicts(bmp, 101));
    // Three cycles later there is no overlap.
    EXPECT_FALSE(w.conflicts(bmp, 103));
}

TEST(SlidingWindowTest, WindowSlidesForward)
{
    WindowResources res;
    res.loadPorts = 1;
    SlidingWindow w(res, 16);
    std::vector<FuKind> bmp = {FuKind::LoadPort};
    w.reserve(bmp, 10);
    EXPECT_TRUE(w.conflicts(bmp, 10));
    // After the reserved cycle passes, the line is clear again.
    EXPECT_FALSE(w.conflicts(bmp, 30));
}

TEST(SlidingWindowTest, UsedAtReportsCurrentCycle)
{
    WindowResources res;
    SlidingWindow w(res, 16);
    std::vector<FuKind> bmp = {FuKind::StorePort};
    w.reserve(bmp, 5);   // reserves cycle 6
    EXPECT_EQ(w.usedAt(FuKind::StorePort, 6), 1);
    EXPECT_EQ(w.usedAt(FuKind::StorePort, 7), 0);
}

TEST(AluPipelineTest, EntryAndOutputConflicts)
{
    AluPipeline ap(4);
    EXPECT_TRUE(ap.tryIssue(10, 3));
    // Entry busy at 10.
    EXPECT_FALSE(ap.tryIssue(10, 1));
    // Output port busy at 13: a singleton entering at 12 with lat 1
    // would write at 13.
    EXPECT_FALSE(ap.tryIssue(12, 1));
    // lat 2 writes at 14: fine.
    EXPECT_TRUE(ap.tryIssue(12, 2));
    EXPECT_EQ(ap.accepted(), 2u);
}

TEST(AluPipelineTest, SingletonsBackToBack)
{
    AluPipeline ap(4);
    for (Cycle c = 0; c < 8; ++c)
        EXPECT_TRUE(ap.tryIssue(c, 1)) << c;
}

TEST(SequencerTest, CountedOccupancy)
{
    SequencerPool seqs(2);
    EXPECT_TRUE(seqs.tryStart(0, 4));
    EXPECT_TRUE(seqs.tryStart(0, 4));
    EXPECT_FALSE(seqs.tryStart(1, 4));    // both walking
    EXPECT_EQ(seqs.freeAt(3), 0);
    EXPECT_EQ(seqs.freeAt(4), 2);
    EXPECT_TRUE(seqs.tryStart(4, 2));
    EXPECT_EQ(seqs.walks(), 3u);
}

TEST(FuPoolTest, CompositionLimits)
{
    FuPoolConfig cfg;   // 4 int, 2 fp, 2 ld, 1 st, width 6
    FuPool fu(cfg);
    fu.beginCycle(5);
    EXPECT_TRUE(fu.tryIssueSingleton(FuKind::StorePort));
    EXPECT_FALSE(fu.tryIssueSingleton(FuKind::StorePort));
    EXPECT_TRUE(fu.tryIssueSingleton(FuKind::LoadPort));
    EXPECT_TRUE(fu.tryIssueSingleton(FuKind::LoadPort));
    EXPECT_FALSE(fu.tryIssueSingleton(FuKind::LoadPort));
    EXPECT_TRUE(fu.tryIssueSingleton(FuKind::IntAlu));
    EXPECT_TRUE(fu.tryIssueSingleton(FuKind::IntAlu));
    EXPECT_TRUE(fu.tryIssueSingleton(FuKind::IntAlu));
    // Total issue width (6) now exhausted even though an ALU remains.
    EXPECT_FALSE(fu.tryIssueSingleton(FuKind::IntAlu));
}

TEST(FuPoolTest, IntOpsSpillOntoAluPipes)
{
    FuPoolConfig cfg;
    cfg.intAlus = 2;
    cfg.aluPipes = 2;
    FuPool fu(cfg);
    fu.beginCycle(0);
    // Four integer ops per cycle: 2 plain + 2 pipeline stage-0 slots.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(fu.tryIssueSingleton(FuKind::IntAlu)) << i;
    EXPECT_FALSE(fu.tryIssueSingleton(FuKind::IntAlu));
}

TEST(FuPoolTest, WritePortBudget)
{
    FuPoolConfig cfg;
    FuPool fu(cfg);
    fu.beginCycle(0);
    for (int i = 0; i < cfg.regWritePorts; ++i)
        EXPECT_TRUE(fu.claimWritePort(9));
    EXPECT_FALSE(fu.writePortFree(9));
    EXPECT_FALSE(fu.claimWritePort(9));
    EXPECT_TRUE(fu.writePortFree(10));
}

TEST(FuPoolTest, ReadPortBudget)
{
    FuPoolConfig cfg;
    FuPool fu(cfg);
    fu.beginCycle(0);
    EXPECT_TRUE(fu.claimReadPorts(3));
    EXPECT_TRUE(fu.claimReadPorts(2));
    EXPECT_FALSE(fu.claimReadPorts(1));
    EXPECT_EQ(fu.readPortsFree(), 0);
}

TEST(FuPoolTest, PreClaimConsumesUnitsNotIssueSlots)
{
    FuPoolConfig cfg;
    FuPool fu(cfg);
    fu.beginCycle(0);
    fu.preClaim(FuKind::LoadPort, 2);
    EXPECT_FALSE(fu.canIssueSingleton(FuKind::LoadPort));
    // Issue width is untouched: integer ops still flow.
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(fu.tryIssueSingleton(FuKind::IntAlu));
}

} // namespace
} // namespace mg
