/**
 * @file
 * Property-based / parameterized sweeps: across machine shapes and
 * policy settings, simulations must terminate, retire exactly the
 * oracle's work, validate outputs, never leak physical registers, and
 * respect structural invariants. Selection must be deterministic.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/suites.hh"

namespace mg {
namespace {

struct Shape
{
    const char *name;
    int width;
    int rob;
    int iq;
    int lsq;
    int regs;
    int sched;
};

const Shape shapes[] = {
    {"paper6wide", 6, 128, 50, 64, 164, 1},
    {"narrow2", 2, 32, 12, 16, 96, 1},
    {"wide8", 8, 256, 64, 64, 192, 1},
    {"tinyrob", 6, 8, 8, 8, 96, 1},
    {"slow_sched", 6, 128, 50, 64, 164, 2},
    {"minregs", 6, 128, 50, 64, 66, 1},
};

class ShapeSweep : public ::testing::TestWithParam<Shape>
{
};

TEST_P(ShapeSweep, BaselineTerminatesAndValidates)
{
    const Shape &s = GetParam();
    BoundKernel bk = bindKernel(findKernel("drr"));
    CoreConfig cfg;
    cfg.fetchWidth = cfg.renameWidth = cfg.issueWidth = cfg.commitWidth =
        s.width;
    cfg.fu.issueWidth = s.width;
    cfg.robSize = s.rob;
    cfg.iqSize = s.iq;
    cfg.lsqSize = s.lsq;
    cfg.physRegs = s.regs;
    cfg.schedulerCycles = s.sched;

    Core core(*bk.program, nullptr, cfg);
    bk.kernel->setup(core.oracle(), 0);
    CoreStats st = core.run();
    EXPECT_TRUE(bk.kernel->validate(core.oracle(), 0)) << s.name;
    EXPECT_GT(st.ipc(), 0.0) << s.name;

    Emulator ref(*bk.program);
    bk.kernel->setup(ref, 0);
    EXPECT_EQ(st.committedWork, ref.run().dynWork) << s.name;
}

TEST_P(ShapeSweep, MiniGraphTerminatesAndValidates)
{
    const Shape &s = GetParam();
    BoundKernel bk = bindKernel(findKernel("frag"));
    SimConfig sc = SimConfig::intMemMg();
    sc.core.fetchWidth = sc.core.renameWidth = sc.core.issueWidth =
        sc.core.commitWidth = s.width;
    sc.core.fu.issueWidth = s.width;
    sc.core.robSize = s.rob;
    sc.core.iqSize = s.iq;
    sc.core.lsqSize = s.lsq;
    sc.core.physRegs = s.regs;
    sc.core.schedulerCycles = s.sched;

    BlockProfile prof = collectProfile(*bk.program, bk.setup,
                                       sc.profileBudget);
    PreparedMg prep = prepareMiniGraphs(*bk.program, prof, sc.policy,
                                        sc.machine);
    Core core(prep.program, &prep.table, sc.core);
    bk.kernel->setup(core.oracle(), 0);
    CoreStats st = core.run();
    EXPECT_TRUE(bk.kernel->validate(core.oracle(), 0)) << s.name;
    EXPECT_GT(st.committedHandles, 0u) << s.name;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ShapeSweep, ::testing::ValuesIn(shapes),
                         [](const auto &info) {
                             return std::string(info.param.name);
                         });

class PolicySweep
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, int>>
{
};

TEST_P(PolicySweep, SelectionRespectsPolicyEverywhere)
{
    auto [ext, inte, repl, size] = GetParam();
    SelectionPolicy policy;
    policy.allowExternallySerial = ext;
    policy.allowInternallySerial = inte;
    policy.allowInteriorLoads = repl;
    policy.maxSize = size;

    BoundKernel bk = bindKernel(findKernel("gzip"));
    BlockProfile prof = collectProfile(*bk.program, bk.setup, 200000);
    Cfg cfg(*bk.program);
    Liveness live(cfg);
    Selection sel = selectMiniGraphs(cfg, live, prof, policy,
                                     MgtMachine{});
    for (const auto &si : sel.instances) {
        EXPECT_LE(si.cand.size(), size);
        if (!ext)
            EXPECT_FALSE(si.cand.externallySerial);
        if (!inte)
            EXPECT_FALSE(si.cand.internallySerial);
        if (!repl)
            EXPECT_FALSE(si.cand.interiorLoad);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicySweep,
    ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                       ::testing::Bool(), ::testing::Values(2, 4, 8)));

TEST(Determinism, SelectionIsStableAcrossRuns)
{
    BoundKernel bk = bindKernel(findKernel("reed"));
    BlockProfile prof = collectProfile(*bk.program, bk.setup, 300000);
    Cfg cfg(*bk.program);
    Liveness live(cfg);
    Selection a = selectMiniGraphs(cfg, live, prof, SelectionPolicy{},
                                   MgtMachine{});
    Selection b = selectMiniGraphs(cfg, live, prof, SelectionPolicy{},
                                   MgtMachine{});
    ASSERT_EQ(a.instances.size(), b.instances.size());
    ASSERT_EQ(a.table.size(), b.table.size());
    for (size_t i = 0; i < a.instances.size(); ++i) {
        EXPECT_EQ(a.instances[i].mgid, b.instances[i].mgid);
        EXPECT_EQ(a.instances[i].cand.members,
                  b.instances[i].cand.members);
    }
}

TEST(Determinism, TimingIsReproducible)
{
    BoundKernel bk = bindKernel(findKernel("crc"));
    CoreStats a = runCore(*bk.program, nullptr, CoreConfig{}, bk.setup);
    CoreStats b = runCore(*bk.program, nullptr, CoreConfig{}, bk.setup);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committedWork, b.committedWork);
    EXPECT_EQ(a.mispredicts, b.mispredicts);
}

TEST(CoverageProperty, MgtBudgetMonotonicity)
{
    // More MGT entries can never reduce estimated coverage.
    BoundKernel bk = bindKernel(findKernel("gzip"));
    BlockProfile prof = collectProfile(*bk.program, bk.setup, 300000);
    Cfg cfg(*bk.program);
    Liveness live(cfg);
    double prev = -1.0;
    for (int entries : {1, 2, 4, 8, 32, 128}) {
        SelectionPolicy policy;
        policy.maxTemplates = entries;
        Selection sel = selectMiniGraphs(cfg, live, prof, policy,
                                         MgtMachine{});
        double cov = sel.coverage(cfg, prof);
        EXPECT_GE(cov + 1e-12, prev) << entries;
        prev = cov;
    }
}

TEST(CoverageProperty, LargerMaxSizeMonotonicity)
{
    BoundKernel bk = bindKernel(findKernel("blowfish"));
    BlockProfile prof = collectProfile(*bk.program, bk.setup, 300000);
    Cfg cfg(*bk.program);
    Liveness live(cfg);
    double prev = -1.0;
    for (int size : {2, 3, 4, 8}) {
        SelectionPolicy policy;
        policy.maxSize = size;
        Selection sel = selectMiniGraphs(cfg, live, prof, policy,
                                         MgtMachine{});
        double cov = sel.coverage(cfg, prof);
        EXPECT_GE(cov + 1e-12, prev) << size;
        prev = cov;
    }
}

} // namespace
} // namespace mg
