/**
 * @file
 * Enumeration and legality unit tests, including the paper's Figure 1
 * worked example: the extractor must find exactly the two mini-graphs
 * shown there, with the right anchors and interfaces, and reject the
 * constructions Section 3.1 forbids.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "assembler/assembler.hh"
#include "mg/enumerate.hh"
#include "mg/legality.hh"

namespace mg {
namespace {

struct Analysis
{
    Program prog;
    std::unique_ptr<Cfg> cfg;
    std::unique_ptr<Liveness> live;
    std::vector<Candidate> cands;
};

Analysis
analyze(const std::string &src, SelectionPolicy policy = {})
{
    Analysis a;
    a.prog = assemble(src);
    a.cfg = std::make_unique<Cfg>(a.prog);
    a.live = std::make_unique<Liveness>(*a.cfg);
    a.cands = enumerateCandidates(*a.cfg, *a.live, policy);
    return a;
}

bool
hasCandidate(const Analysis &a, std::vector<InsnIdx> members)
{
    for (const Candidate &c : a.cands) {
        if (c.members == members)
            return true;
    }
    return false;
}

const Candidate *
getCandidate(const Analysis &a, std::vector<InsnIdx> members)
{
    for (const Candidate &c : a.cands) {
        if (c.members == members)
            return &c;
    }
    return nullptr;
}

// The left snippet of the paper's Figure 1: addl/cmplt/bne collapse
// into one mini-graph anchored at the branch, with inputs r18, r5 and
// output r18.
TEST(Figure1, LeftSnippet)
{
    // r7 is consumed by the branch and dead afterwards; r18 is the
    // output (live-out).
    Analysis a = analyze(R"(
        .text
main:
        addl r18, 2, r18
        lda r6, 2(r6)
        s8addl r7, r0, r7
        cmplt r18, r5, r7
        bne r7, target
        halt
target:
        addq r18, r6, r1
        halt
    )");
    const Candidate *c = getCandidate(a, {0, 3, 4});
    ASSERT_NE(c, nullptr)
        << "addl/cmplt/bne mini-graph not enumerated";
    EXPECT_EQ(c->anchor, 4u);                 // anchored at the branch
    ASSERT_EQ(c->inputs.size(), 2u);
    EXPECT_EQ(c->inputs[0], 18);
    EXPECT_EQ(c->inputs[1], 5);
    EXPECT_EQ(c->output, 18);
    EXPECT_EQ(c->outMember, 0);
    EXPECT_TRUE(c->endsInBranch);
    EXPECT_TRUE(c->externallySerial);         // cmplt needs r5 late
}

// The right snippet of Figure 1: ldq/srl/and with the load anchor.
TEST(Figure1, RightSnippet)
{
    Analysis a = analyze(R"(
        .text
main:
        ldq r2, 16(r4)
        srl r2, 14, r17
        bis r31, r18, r16
        and r17, 1, r17
        addq r16, r17, r1
        halt
    )");
    const Candidate *c = getCandidate(a, {0, 1, 3});
    ASSERT_NE(c, nullptr) << "ldq/srl/and mini-graph not enumerated";
    EXPECT_EQ(c->anchor, 0u);                 // anchored at the load
    ASSERT_EQ(c->inputs.size(), 1u);
    EXPECT_EQ(c->inputs[0], 4);
    EXPECT_EQ(c->output, 17);
    EXPECT_TRUE(c->hasLoad);
    EXPECT_FALSE(c->endsInBranch);
}

TEST(Legality, RejectsThreeInputs)
{
    // addq r1,r2 and addq r3,r4 feed the final add: four inputs.
    Analysis a = analyze(R"(
        .text
main:
        addq r1, r2, r5
        addq r3, r4, r6
        addq r5, r6, r7
        stq r7, out
        halt
        .data
out:    .space 8
    )");
    EXPECT_FALSE(hasCandidate(a, {0, 1, 2}));
    // The pairs (0,2) and (1,2) have three inputs too.
    EXPECT_FALSE(hasCandidate(a, {0, 2}));
    EXPECT_FALSE(hasCandidate(a, {1, 2}));
}

TEST(Legality, RejectsTwoMemoryOps)
{
    Analysis a = analyze(R"(
        .text
main:
        ldq r1, 0(r2)
        ldq r3, 8(r1)
        stq r3, out
        halt
        .data
out:    .space 8
    )");
    EXPECT_FALSE(hasCandidate(a, {0, 1}));
}

TEST(Legality, RejectsTwoEscapingOutputs)
{
    Analysis a = analyze(R"(
        .text
main:
        addq r1, 1, r3
        addq r3, 1, r4
        stq r3, out
        stq r4, out+8
        halt
        .data
out:    .space 16
    )");
    EXPECT_FALSE(hasCandidate(a, {0, 1}));
}

TEST(Legality, RejectsInteriorLiveOut)
{
    // r3 would be interior to {0,1} but is read again later.
    Analysis a = analyze(R"(
        .text
main:
        addq r1, 1, r3
        addq r3, 1, r4
        stq r4, out
        addq r3, 9, r5
        stq r5, out+8
        halt
        .data
out:    .space 16
    )");
    EXPECT_FALSE(hasCandidate(a, {0, 1}));
}

TEST(Legality, AcceptsInteriorRedefinedLater)
{
    // r3 is interior to {0,1}; it is redefined before any later use,
    // so the pair is legal.
    Analysis a = analyze(R"(
        .text
main:
        addq r1, 1, r3
        addq r3, 1, r4
        li r3, 0
        addq r3, r4, r5
        stq r5, out
        halt
        .data
out:    .space 8
    )");
    EXPECT_TRUE(hasCandidate(a, {0, 1}));
}

TEST(Legality, BranchMustTerminate)
{
    // A branch mid-block cannot happen (it ends the block), but a
    // graph ending at a non-terminal member with the block's branch
    // excluded must not claim the branch position.
    Analysis a = analyze(R"(
        .text
main:
        addq r1, 1, r2
        cmplt r2, r3, r4
        bne r4, main
        halt
    )");
    const Candidate *c = getCandidate(a, {0, 1, 2});
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->endsInBranch);
    // Sub-graph without the branch is also legal (r4 consumed by it
    // is... live: r4 feeds the branch outside the graph -> output).
    const Candidate *sub = getCandidate(a, {0, 1});
    ASSERT_NE(sub, nullptr);
    EXPECT_EQ(sub->output, 4);
}

TEST(Legality, AnchorInterferenceRegister)
{
    // {0, 2} around the anchor at 2: instruction 1 overwrites r2 (an
    // input of member 0 moving down) -- wait, member 0 moves DOWN to
    // the anchor, and instruction 1 writes member 0's SOURCE r1:
    // moving addq past it would read the wrong r1.
    Analysis a = analyze(R"(
        .text
main:
        addq r1, 1, r2
        li r1, 77
        addq r2, 1, r4
        stq r4, out
        stq r1, out+8
        halt
        .data
out:    .space 16
    )");
    EXPECT_FALSE(hasCandidate(a, {0, 2}));
}

TEST(Legality, AnchorInterferenceMemory)
{
    // Branch-anchored graph {0,1,4} would move its load past the
    // store at 3 (same base register): must be rejected.
    Analysis a = analyze(R"(
        .text
main:
        ldq r5, 0(r4)
        subq r5, 1, r5
        addq r10, 1, r6
        stq r6, 0(r4)
        blt r5, main
        halt
    )");
    EXPECT_FALSE(hasCandidate(a, {0, 1, 4}));
    // Without the branch, the load anchors in place: legal.
    EXPECT_TRUE(hasCandidate(a, {0, 1}));
}

TEST(Legality, PolicyFilters)
{
    SelectionPolicy noSerial;
    noSerial.allowExternallySerial = false;
    Analysis a = analyze(R"(
        .text
main:
        addl r18, 2, r18
        cmplt r18, r5, r7
        bne r7, main
        halt
    )", noSerial);
    EXPECT_FALSE(hasCandidate(a, {0, 1, 2}));

    SelectionPolicy noMem;
    noMem.allowMemory = false;
    Analysis b = analyze(R"(
        .text
main:
        ldq r2, 16(r4)
        srl r2, 14, r17
        stq r17, out
        halt
        .data
out:    .space 8
    )", noMem);
    EXPECT_FALSE(hasCandidate(b, {0, 1}));

    SelectionPolicy noReplay;
    noReplay.allowInteriorLoads = false;
    Analysis c = analyze(R"(
        .text
main:
        ldq r2, 16(r4)
        srl r2, 14, r17
        stq r17, out
        halt
        .data
out:    .space 8
    )", noReplay);
    EXPECT_FALSE(hasCandidate(c, {0, 1}));
}

TEST(Legality, SizeLimit)
{
    SelectionPolicy small;
    small.maxSize = 2;
    Analysis a = analyze(R"(
        .text
main:
        addq r1, 1, r2
        addq r2, 1, r2
        addq r2, 1, r2
        stq r2, out
        halt
        .data
out:    .space 8
    )", small);
    for (const Candidate &c : a.cands)
        EXPECT_LE(c.size(), 2);
    EXPECT_TRUE(hasCandidate(a, {0, 1}));
    EXPECT_FALSE(hasCandidate(a, {0, 1, 2}));
}

TEST(Legality, ConnectivityRequired)
{
    // Two independent chains in one block: their union is not a
    // connected dataflow graph.
    Analysis a = analyze(R"(
        .text
main:
        addq r1, 1, r3
        addq r3, 1, r3
        addq r2, 1, r4
        addq r4, 1, r4
        stq r3, out
        stq r4, out+8
        halt
        .data
out:    .space 16
    )");
    EXPECT_FALSE(hasCandidate(a, {0, 2}));
    EXPECT_TRUE(hasCandidate(a, {0, 1}));
    EXPECT_TRUE(hasCandidate(a, {2, 3}));
}

TEST(Legality, InternallySerialClassification)
{
    // Two independent producers feeding a consumer: internal
    // parallelism exists, so the candidate is internally serial
    // (collapsing adds latency).
    Analysis a = analyze(R"(
        .text
main:
        addq r1, 1, r3
        addq r1, 2, r4
        addq r3, r4, r5
        stq r5, out
        halt
        .data
out:    .space 8
    )");
    const Candidate *c = getCandidate(a, {0, 1, 2});
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->internallySerial);

    const Candidate *chain = getCandidate(a, {0, 2});
    ASSERT_NE(chain, nullptr);
    EXPECT_FALSE(chain->internallySerial);
}

} // namespace
} // namespace mg
