/**
 * @file
 * Sampled-vs-full accuracy bound on the long-workload tier (label:
 * long), now covering the complete 23-kernel corpus. Every long
 * kernel runs full and sampled (default warm-through parameters)
 * under the baseline and integer-memory machines; the battery pins
 * the measured accuracy envelope (median, quiet-cell cap, CI
 * announcement for loud cells), the aggregate wall-clock win, and
 * the jump-mode footprint warning. The store-backed battery pins the
 * warm-checkpoint store's accuracy rescue of the one loud cell
 * (reed/int-mem) and its cross-session determinism contract. The
 * measured figures behind these bounds are tabulated in
 * docs/EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "engine/checkpoint_store.hh"
#include "engine/engine.hh"
#include "workloads/suites.hh"

using namespace mg;

TEST(LongSampling, AccuracyEnvelopeAndAggregateSpeedup)
{
    ExperimentEngine eng(0);
    std::vector<double> errs;
    double fullWall = 0, sampledWall = 0;
    for (SimConfig cfg : {SimConfig::baseline(), SimConfig::intMemMg()}) {
        for (const BoundKernel &bk : bindAll(Scale::Long)) {
            EngineWorkload w = workload(bk);
            TimedStats full = eng.cellTimed(w, cfg);
            SimConfig sc = cfg;
            sc.sampling.enabled = true;
            TimedSampled samp = eng.cellSampledTimed(w, sc);

            ASSERT_GT(full.stats.ipc(), 0.0);
            double err =
                std::abs(samp.stats.est.ipc() - full.stats.ipc()) /
                full.stats.ipc();
            // Quiet cells stay tight (measured worst 2.1%,
            // gzip/int-mem); anything beyond must announce itself
            // through the error bound. The one known loud cell is
            // reed/int-mem (~26% at a ~11% CI): its store-set
            // serialization onset is discovered at detailed-work
            // rate, a duty-limited process no functional warming can
            // accelerate. A checkpoint store fixes this (two-pass
            // violation seeding, pinned by StoreBackedReedAccuracy
            // below); this battery runs storeless on purpose to keep
            // pinning the announced-error contract of the default
            // path — see docs/EXPERIMENTS.md.
            if (err > 0.025) {
                EXPECT_LE(err, 2.5 * samp.stats.ipcRelCi95)
                    << w.id << "/" << cfg.name << " quiet error: sampled "
                    << samp.stats.est.ipc() << " vs full "
                    << full.stats.ipc();
            }
            // Hard absolute backstop above the known reed outlier: a
            // CI-covered error is announced, not unbounded — a
            // regression that inflates both the error and its
            // self-reported CI must still trip.
            EXPECT_LE(err, 0.35) << w.id << "/" << cfg.name;
            EXPECT_FALSE(samp.stats.exact)
                << w.id << " degraded to exact: not a long workload?";
            errs.push_back(err);
            fullWall += full.seconds;
            sampledWall += samp.seconds;
        }
    }
    std::sort(errs.begin(), errs.end());
    // The PR 2 issue's target, now reachable on M-scale kernels:
    // median IPC error at most 2%...
    EXPECT_LE(errs[errs.size() / 2], 0.02);
    // ...at a wall-clock win. The measured aggregate is ~4x
    // single-threaded; 2x leaves headroom for noisy CI machines
    // (docs/EXPERIMENTS.md carries the real numbers).
    EXPECT_GE(fullWall, 2.0 * sampledWall)
        << "sampled long tier no longer at least halves the "
           "full-simulation wall clock";
}

TEST(LongSampling, StoreBackedReedAccuracyAndCrossSessionDeterminism)
{
    // The loud cell of the storeless battery above, with the
    // warm-checkpoint store attached. The two-pass violation seeding
    // must pull reed/int-mem from ~26% IPC error to inside 4%
    // (measured 1.87% under salted placement — the bound leaves room
    // for placement drift, not for a regression of the mechanism),
    // and a second session
    // against the same store directory must reproduce the first
    // session's stats bit for bit while restoring — not recomputing
    // — its warm state.
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
        ("mg-long-store-" + std::to_string(::getpid()));
    fs::remove_all(dir);

    EngineWorkload w =
        workload(bindKernel(findKernel("reed"), Scale::Long));
    SimConfig cfg = SimConfig::intMemMg();
    double full = ExperimentEngine(1).cell(w, cfg).ipc();
    SimConfig sc = cfg;
    sc.sampling.enabled = true;

    ExperimentEngine cold(1);
    cold.setCheckpointStore(std::make_shared<CheckpointStore>(
        CheckpointStoreConfig{dir.string()}));
    SampledStats a = cold.cellSampled(w, sc);
    EXPECT_LE(std::abs(a.est.ipc() - full) / full, 0.04)
        << "store-backed reed/int-mem error regressed (sampled "
        << a.est.ipc() << " vs full " << full << ")";
    EXPECT_GT(a.ckptWritebacks, 0u);

    ExperimentEngine warm(1);
    warm.setCheckpointStore(std::make_shared<CheckpointStore>(
        CheckpointStoreConfig{dir.string()}));
    SampledStats b = warm.cellSampled(w, sc);
    EXPECT_GT(b.ckptRestores, 0u);
    EXPECT_EQ(b.ckptWritebacks, 0u);
    EXPECT_EQ(b.est, a.est);
    EXPECT_EQ(b.intervals, a.intervals);
    EXPECT_EQ(b.ipcHat, a.ipcHat);
    EXPECT_EQ(b.ipcRelCi95, a.ipcRelCi95);

    fs::remove_all(dir);
}

TEST(LongSampling, StoreBackedWorstCellStaysInsideDocumentedBound)
{
    // Satellite bound for the measurement-phase salt: the worst
    // store-enabled long-tier cell on record was gzip/int-mem at
    // 2.21% (docs/EXPERIMENTS.md) under grid-aligned placement; the
    // salted placement measured 0.77% on it. The documented historic
    // worst is the regression ceiling — the fix must never be the
    // thing that pushes a store-enabled cell past it.
    namespace fs = std::filesystem;
    fs::path dir = fs::temp_directory_path() /
        ("mg-long-worst-" + std::to_string(::getpid()));
    fs::remove_all(dir);

    EngineWorkload w =
        workload(bindKernel(findKernel("gzip"), Scale::Long));
    SimConfig cfg = SimConfig::intMemMg();
    double full = ExperimentEngine(1).cell(w, cfg).ipc();
    SimConfig sc = cfg;
    sc.sampling.enabled = true;

    ExperimentEngine eng(1);
    eng.setCheckpointStore(std::make_shared<CheckpointStore>(
        CheckpointStoreConfig{dir.string()}));
    SampledStats s = eng.cellSampled(w, sc);
    EXPECT_FALSE(s.exact);
    EXPECT_LE(std::abs(s.est.ipc() - full) / full, 0.0221)
        << "store-enabled gzip/int-mem error beyond the documented "
           "worst: sampled " << s.est.ipc() << " vs full " << full;

    fs::remove_all(dir);
}

TEST(LongSampling, CheckpointJumpModeStillFlagsItsErrors)
{
    // The checkpoint-jump fast path (--no-warm-through) is allowed to
    // be wrong on footprint-bound kernels — rtr misses its whole-run
    // cache ramp — but it must say so: the reported 95% CI has to
    // cover the real error (the honest-flagging contract CI checks).
    ExperimentEngine eng(0);
    BoundKernel bk = bindKernel(findKernel("rtr"), Scale::Long);
    EngineWorkload w = workload(bk);
    SimConfig cfg = SimConfig::baseline();
    double full = eng.cell(w, cfg).ipc();
    SimConfig sc = cfg;
    sc.sampling.enabled = true;
    sc.sampling.warmThrough = false;
    SampledStats jump = eng.cellSampled(w, sc);
    double err = std::abs(jump.est.ipc() - full) / full;
    EXPECT_LE(err, 2.5 * jump.ipcRelCi95)
        << "jump-mode error " << err << " not covered by CI "
        << jump.ipcRelCi95;

    // And the default warm-through run must beat it on this kernel.
    sc.sampling.warmThrough = true;
    SampledStats wt = eng.cellSampled(w, sc);
    EXPECT_LT(std::abs(wt.est.ipc() - full) / full, err);
}

TEST(LongSampling, JumpModeFootprintWarningFiresExactlyWhereItShould)
{
    // Machine-detectable footprint blindness: when checkpoint jumps
    // skip more working-set first-touch history than the warm budget
    // restores *persistently* (the rtr signature — its cache-residency
    // ramp gets stretched across every measurement), the cell must
    // carry footprint_warning. A startup-transient kernel (mcf covers
    // its node array within a few measurements) must NOT warn, and
    // warm-through mode — which skips nothing — must never warn.
    ExperimentEngine eng(0);
    SimConfig cfg = SimConfig::baseline();

    auto sampledAt = [&](const char *name, bool warmThrough) {
        BoundKernel bk = bindKernel(findKernel(name), Scale::Long);
        SimConfig sc = cfg;
        sc.sampling.enabled = true;
        sc.sampling.warmThrough = warmThrough;
        return eng.cellSampled(workload(bk), sc);
    };

    SampledStats rtrJump = sampledAt("rtr", false);
    EXPECT_TRUE(rtrJump.footprintWarning)
        << "rtr@long jump mode must flag its footprint blindness";
    EXPECT_GT(rtrJump.footprintSkippedLines, 0u);

    SampledStats mcfJump = sampledAt("mcf", false);
    EXPECT_FALSE(mcfJump.footprintWarning)
        << "mcf@long covers its footprint within a few measurements";

    EXPECT_FALSE(sampledAt("rtr", true).footprintWarning)
        << "warm-through skips nothing and must never warn";

    // The warning is a first-class JSON field, so rtr-style errors
    // are machine-detectable from the report alone.
    SweepSpec spec;
    spec.title = "footprint warning";
    spec.workloads = {
        workload(bindKernel(findKernel("rtr"), Scale::Long))};
    SimConfig sc = cfg;
    sc.sampling.enabled = true;
    sc.sampling.warmThrough = false;
    spec.columns.push_back({"base-jump", sc, true});
    SweepResult r = eng.sweep(spec);
    std::string json = sweepJson(r, "footprint");
    EXPECT_NE(json.find("\"footprint_warning\": true"),
              std::string::npos);
    EXPECT_NE(json.find("\"footprint_skipped_lines\""),
              std::string::npos);
}

TEST(LongSampling, SummarySharedAcrossScalesIsKeyedApart)
{
    // The same kernel at the two scales must produce two summary
    // artifacts (different inputs), not one: the "@long" id suffix is
    // what keeps the fingerprints apart.
    ExperimentEngine eng(1);
    SimConfig sc = SimConfig::baseline();
    sc.sampling.enabled = true;
    eng.cellSampled(workload(bindKernel(findKernel("bitcount"))), sc);
    eng.cellSampled(
        workload(bindKernel(findKernel("bitcount"), Scale::Long)), sc);
    EngineCounters c = eng.counters();
    EXPECT_EQ(c.summaryComputes, 2u);
    EXPECT_EQ(c.summaryHits, 0u);
    EXPECT_EQ(c.sampledComputes, 2u);
}
