/**
 * @file
 * Sampled-vs-full accuracy bound on the long-workload tier (label:
 * long) — the PR 2 revisit ROADMAP deferred until longer workloads
 * landed. Every long kernel runs full and sampled (default
 * warm-through parameters) under the baseline and integer-memory
 * machines; the battery pins the measured accuracy envelope (median,
 * per-cell cap, CI announcement for outliers) and the aggregate
 * wall-clock win. The measured figures behind these bounds are
 * tabulated in docs/EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/engine.hh"
#include "workloads/suites.hh"

using namespace mg;

TEST(LongSampling, AccuracyEnvelopeAndAggregateSpeedup)
{
    ExperimentEngine eng(0);
    std::vector<double> errs;
    double fullWall = 0, sampledWall = 0;
    for (SimConfig cfg : {SimConfig::baseline(), SimConfig::intMemMg()}) {
        for (const BoundKernel &bk : bindAll(Scale::Long)) {
            EngineWorkload w = workload(bk);
            TimedStats full = eng.cellTimed(w, cfg);
            SimConfig sc = cfg;
            sc.sampling.enabled = true;
            TimedSampled samp = eng.cellSampledTimed(w, sc);

            ASSERT_GT(full.stats.ipc(), 0.0);
            double err =
                std::abs(samp.stats.est.ipc() - full.stats.ipc()) /
                full.stats.ipc();
            // Measured worst case is 3.6% (rtr@long); pin 8% so a
            // regression of the warm-through path trips loudly.
            EXPECT_LE(err, 0.08)
                << w.id << "/" << cfg.name << " sampled "
                << samp.stats.est.ipc() << " vs full "
                << full.stats.ipc();
            // Outliers must announce themselves via the error bound.
            if (err > 0.02) {
                EXPECT_LE(err, 2.5 * samp.stats.ipcRelCi95)
                    << w.id << "/" << cfg.name;
            }
            EXPECT_FALSE(samp.stats.exact)
                << w.id << " degraded to exact: not a long workload?";
            errs.push_back(err);
            fullWall += full.seconds;
            sampledWall += samp.seconds;
        }
    }
    std::sort(errs.begin(), errs.end());
    // The PR 2 issue's target, now reachable on M-scale kernels:
    // median IPC error at most 2%...
    EXPECT_LE(errs[errs.size() / 2], 0.02);
    // ...at a wall-clock win. The measured aggregate is ~4x
    // single-threaded; 2x leaves headroom for noisy CI machines
    // (docs/EXPERIMENTS.md carries the real numbers).
    EXPECT_GE(fullWall, 2.0 * sampledWall)
        << "sampled long tier no longer at least halves the "
           "full-simulation wall clock";
}

TEST(LongSampling, CheckpointJumpModeStillFlagsItsErrors)
{
    // The checkpoint-jump fast path (--no-warm-through) is allowed to
    // be wrong on footprint-bound kernels — rtr misses its whole-run
    // cache ramp — but it must say so: the reported 95% CI has to
    // cover the real error (the honest-flagging contract CI checks).
    ExperimentEngine eng(0);
    BoundKernel bk = bindKernel(findKernel("rtr"), Scale::Long);
    EngineWorkload w = workload(bk);
    SimConfig cfg = SimConfig::baseline();
    double full = eng.cell(w, cfg).ipc();
    SimConfig sc = cfg;
    sc.sampling.enabled = true;
    sc.sampling.warmThrough = false;
    SampledStats jump = eng.cellSampled(w, sc);
    double err = std::abs(jump.est.ipc() - full) / full;
    EXPECT_LE(err, 2.5 * jump.ipcRelCi95)
        << "jump-mode error " << err << " not covered by CI "
        << jump.ipcRelCi95;

    // And the default warm-through run must beat it on this kernel.
    sc.sampling.warmThrough = true;
    SampledStats wt = eng.cellSampled(w, sc);
    EXPECT_LT(std::abs(wt.est.ipc() - full) / full, err);
}

TEST(LongSampling, SummarySharedAcrossScalesIsKeyedApart)
{
    // The same kernel at the two scales must produce two summary
    // artifacts (different inputs), not one: the "@long" id suffix is
    // what keeps the fingerprints apart.
    ExperimentEngine eng(1);
    SimConfig sc = SimConfig::baseline();
    sc.sampling.enabled = true;
    eng.cellSampled(workload(bindKernel(findKernel("bitcount"))), sc);
    eng.cellSampled(
        workload(bindKernel(findKernel("bitcount"), Scale::Long)), sc);
    EngineCounters c = eng.counters();
    EXPECT_EQ(c.summaryComputes, 2u);
    EXPECT_EQ(c.summaryHits, 0u);
    EXPECT_EQ(c.sampledComputes, 2u);
}
