/**
 * @file
 * Golden tests for every workload kernel: the emulated assembly must
 * reproduce the C++ reference checksum on the primary and alternate
 * input sets, and each kernel must have a sane dynamic length.
 */

#include <gtest/gtest.h>

#include "workloads/suites.hh"

namespace mg {
namespace {

class KernelGolden : public ::testing::TestWithParam<const char *>
{
};

TEST_P(KernelGolden, ValidatesOnPrimaryInput)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()));
    Emulator emu(*bk.program);
    bk.kernel->setup(emu, 0);
    EmuResult r = emu.run(100000000ull);
    ASSERT_EQ(r.stop, StopReason::Halted)
        << bk.kernel->name << " did not halt";
    EXPECT_TRUE(bk.kernel->validate(emu, 0))
        << bk.kernel->name << " checksum mismatch";
    // Kernels are sized for cycle-level simulation: long enough to be
    // meaningful, short enough to sweep configurations.
    EXPECT_GT(r.dynWork, 20000u) << bk.kernel->name << " too short";
    EXPECT_LT(r.dynWork, 2000000u) << bk.kernel->name << " too long";
}

TEST_P(KernelGolden, ValidatesOnAlternateInput)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()));
    Emulator emu(*bk.program);
    bk.kernel->setup(emu, 1);
    EmuResult r = emu.run(100000000ull);
    ASSERT_EQ(r.stop, StopReason::Halted);
    EXPECT_TRUE(bk.kernel->validate(emu, 1))
        << bk.kernel->name << " checksum mismatch on input set 1";
}

const char *const kernelNames[] = {
    "gzip", "mcf", "parser", "twolf", "gap", "crafty",
    "adpcm.enc", "adpcm.dec", "g721.enc", "jpeg.dct", "mpeg2.idct",
    "gsm.lpc",
    "crc", "drr", "frag", "rtr", "reed",
    "bitcount", "sha", "dijkstra", "stringsearch", "blowfish",
    "rgb2gray",
};

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelGolden,
                         ::testing::ValuesIn(kernelNames),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

TEST(KernelRegistry, FourSuitesRegistered)
{
    EXPECT_EQ(suiteNames().size(), 4u);
    for (const std::string &s : suiteNames())
        EXPECT_GE(suiteKernels(s).size(), 5u) << s;
    EXPECT_EQ(allKernels().size(), 23u);
}

TEST(KernelRegistry, AllProgramsAssemble)
{
    for (const Kernel &k : allKernels()) {
        const Program &p = kernelProgram(k);
        EXPECT_GT(p.text.size(), 10u) << k.name;
        EXPECT_TRUE(p.symbols.count("main")) << k.name;
    }
}

TEST(KernelRegistry, UnknownKernelFatalEnumeratesTheRegistry)
{
    // The fatal path must list every valid name so a typo is a
    // one-round-trip fix (and --list-kernels has a discovery path).
    EXPECT_EXIT(findKernel("no-such-kernel"),
                ::testing::ExitedWithCode(1),
                "known kernels:(.|\n)*SPECint-S:(.|\n)*gzip");
}

TEST(KernelRegistry, ListingNamesEveryKernelAndItsScales)
{
    std::string listing = kernelListing();
    for (const Kernel &k : allKernels())
        EXPECT_NE(listing.find(k.name), std::string::npos) << k.name;
    // Every kernel advertises exactly the scales it supports: the
    // whole corpus is long-capable, the per-suite representatives add
    // the huge tier, and the listing row reflects each case (this is
    // what `--list-kernels` prints and the CI smoke test greps).
    EXPECT_NE(listing.find("ref,long,huge"), std::string::npos);
    for (const Kernel &k : allKernels()) {
        EXPECT_TRUE(k.supports(Scale::Long)) << k.name;
        std::size_t row = listing.find(k.name);
        ASSERT_NE(row, std::string::npos) << k.name;
        std::size_t eol = listing.find('\n', row);
        std::string line = listing.substr(row, eol - row);
        EXPECT_NE(line.find(k.supports(Scale::Huge) ? "ref,long,huge"
                                                    : "ref,long"),
                  std::string::npos)
            << line;
    }
    EXPECT_TRUE(findKernel("mcf").supports(Scale::Huge));
    EXPECT_FALSE(findKernel("gzip").supports(Scale::Huge));
}

TEST(KernelRegistry, ScaledSourceFailsLoudlyOnAMissingPattern)
{
    // An unmatched substitution must never silently ship the
    // ref-sized buffer: deriving a scaled variant from a pattern that
    // does not occur in the source is fatal.
    EXPECT_EXIT(scaledSource("sym: .space 100",
                             {{"other: .space 4", "other: .space 8"}}),
                ::testing::ExitedWithCode(1), "not found");
}

TEST(KernelRegistry, ScaledSourceFailsLoudlyOnAnAmbiguousPattern)
{
    // A pattern matching more than once could resize the wrong
    // buffer; the derivation demands exactly one occurrence.
    EXPECT_EXIT(scaledSource("a: .space 8\nb: .space 8\n",
                             {{".space 8", ".space 16"}}),
                ::testing::ExitedWithCode(1), "ambiguous");
}

TEST(KernelRegistry, ScaledSourceSubstitutesExactlyOnce)
{
    const char *out = scaledSource("x: .space 8\ny: .space 32\n",
                                   {{"y: .space 32", "y: .space 64"}});
    EXPECT_STREQ(out, "x: .space 8\ny: .space 64\n");
}

} // namespace
} // namespace mg
