/**
 * @file
 * Golden tests for every workload kernel: the emulated assembly must
 * reproduce the C++ reference checksum on the primary and alternate
 * input sets, and each kernel must have a sane dynamic length.
 */

#include <gtest/gtest.h>

#include "workloads/suites.hh"

namespace mg {
namespace {

class KernelGolden : public ::testing::TestWithParam<const char *>
{
};

TEST_P(KernelGolden, ValidatesOnPrimaryInput)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()));
    Emulator emu(*bk.program);
    bk.kernel->setup(emu, 0);
    EmuResult r = emu.run(100000000ull);
    ASSERT_EQ(r.stop, StopReason::Halted)
        << bk.kernel->name << " did not halt";
    EXPECT_TRUE(bk.kernel->validate(emu, 0))
        << bk.kernel->name << " checksum mismatch";
    // Kernels are sized for cycle-level simulation: long enough to be
    // meaningful, short enough to sweep configurations.
    EXPECT_GT(r.dynWork, 20000u) << bk.kernel->name << " too short";
    EXPECT_LT(r.dynWork, 2000000u) << bk.kernel->name << " too long";
}

TEST_P(KernelGolden, ValidatesOnAlternateInput)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()));
    Emulator emu(*bk.program);
    bk.kernel->setup(emu, 1);
    EmuResult r = emu.run(100000000ull);
    ASSERT_EQ(r.stop, StopReason::Halted);
    EXPECT_TRUE(bk.kernel->validate(emu, 1))
        << bk.kernel->name << " checksum mismatch on input set 1";
}

const char *const kernelNames[] = {
    "gzip", "mcf", "parser", "twolf", "gap", "crafty",
    "adpcm.enc", "adpcm.dec", "g721.enc", "jpeg.dct", "mpeg2.idct",
    "gsm.lpc",
    "crc", "drr", "frag", "rtr", "reed",
    "bitcount", "sha", "dijkstra", "stringsearch", "blowfish",
    "rgb2gray",
};

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelGolden,
                         ::testing::ValuesIn(kernelNames),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

TEST(KernelRegistry, FourSuitesRegistered)
{
    EXPECT_EQ(suiteNames().size(), 4u);
    for (const std::string &s : suiteNames())
        EXPECT_GE(suiteKernels(s).size(), 5u) << s;
    EXPECT_EQ(allKernels().size(), 23u);
}

TEST(KernelRegistry, AllProgramsAssemble)
{
    for (const Kernel &k : allKernels()) {
        const Program &p = kernelProgram(k);
        EXPECT_GT(p.text.size(), 10u) << k.name;
        EXPECT_TRUE(p.symbols.count("main")) << k.name;
    }
}

TEST(KernelRegistry, UnknownKernelFatalEnumeratesTheRegistry)
{
    // The fatal path must list every valid name so a typo is a
    // one-round-trip fix (and --list-kernels has a discovery path).
    EXPECT_EXIT(findKernel("no-such-kernel"),
                ::testing::ExitedWithCode(1),
                "known kernels:(.|\n)*SPECint-S:(.|\n)*gzip");
}

TEST(KernelRegistry, ListingNamesEveryKernelAndItsScales)
{
    std::string listing = kernelListing();
    for (const Kernel &k : allKernels())
        EXPECT_NE(listing.find(k.name), std::string::npos) << k.name;
    // A long-capable kernel advertises both scales; a ref-only one
    // does not.
    EXPECT_NE(listing.find("ref,long"), std::string::npos);
    EXPECT_TRUE(findKernel("mcf").supports(Scale::Long));
    EXPECT_FALSE(findKernel("gzip").supports(Scale::Long));
}

} // namespace
} // namespace mg
