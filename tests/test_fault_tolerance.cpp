/**
 * @file
 * Fault-tolerance battery: the failure-domain, retry/timeout, crash
 * journal, and fault-injection layers of the sweep engine.
 *
 * Four layers, innermost out:
 *  - primitives: FailSoftGate latching, SweepCell serialization round
 *    trips, ThreadPool exception containment (a throwing task must
 *    not kill its worker or be silently swallowed);
 *  - the deterministic fault injector: seeded arming, per-key firing
 *    counts, stall cancellation;
 *  - per-cell failure domains: injected transient faults retry to a
 *    bit-identical cell, permanent faults and timeouts cost exactly
 *    one cell, and the sweep always completes;
 *  - the crash-safe journal: resume skips finished cells and
 *    converges to the uninterrupted sweep, torn tails and corrupt
 *    records truncate instead of poisoning, only Ok cells replay.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/failsoft.hh"
#include "common/serial.hh"
#include "engine/engine.hh"
#include "engine/fault_inject.hh"
#include "engine/journal.hh"
#include "engine/thread_pool.hh"
#include "sim/report.hh"
#include "workloads/suites.hh"

using namespace mg;
namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t testBudget = 30000;

/** Fresh per-test scratch directory (removed on destruction). */
struct ScratchDir
{
    fs::path path;

    explicit ScratchDir(const std::string &tag)
        : path(fs::temp_directory_path() /
               ("mg-fault-test-" + tag + "-" +
                std::to_string(::getpid())))
    {
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~ScratchDir() { fs::remove_all(path); }
    std::string str() const { return path.string(); }
};

/** Arm the global injector for one test; disarm on scope exit so the
 *  process-wide singleton never leaks into the next test. */
struct FaultArm
{
    explicit FaultArm(const std::string &spec)
    {
        FaultInjector::global().configure(spec);
    }
    ~FaultArm() { FaultInjector::global().configure(""); }
};

/** Small 2x2 matrix every engine test here sweeps. */
SweepSpec
testSpec()
{
    SweepSpec spec;
    spec.title = "fault test";
    for (const char *name : {"crc", "bitcount"})
        spec.workloads.push_back(workload(bindKernel(findKernel(name))));
    spec.columns = {{"baseline", SimConfig::baseline(), true},
                    {"int-mem", SimConfig::intMemMg(), true}};
    for (SweepColumn &c : spec.columns)
        c.config.runBudget = testBudget;
    spec.baselineColumn = 0;
    return spec;
}

/** Fast-retry policy so backoff doesn't dominate test wall-clock. */
FaultPolicy
fastRetry(double timeoutS = 0, int retries = 2)
{
    FaultPolicy p;
    p.cellTimeoutS = timeoutS;
    p.cellRetries = retries;
    p.backoffMs = 1;
    return p;
}

void
expectCellsEqual(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.cells.size(), b.cells.size());
    for (std::size_t i = 0; i < a.cells.size(); ++i) {
        EXPECT_EQ(a.cells[i].stats, b.cells[i].stats) << "cell " << i;
        EXPECT_EQ(a.cells[i].timed, b.cells[i].timed);
        EXPECT_EQ(a.cells[i].staticCoverage, b.cells[i].staticCoverage);
        EXPECT_EQ(a.cells[i].templates, b.cells[i].templates);
        EXPECT_EQ(a.cells[i].outcome, b.cells[i].outcome);
    }
}

/** A SweepCell with every serialized field non-default. */
SweepCell
makeCell(std::uint64_t seed)
{
    SweepCell c;
    c.stats.cycles = 1000 + seed;
    c.stats.committedWork = 900 + seed;
    c.timed = true;
    c.staticCoverage = 0.25 + static_cast<double>(seed % 4) / 8;
    c.templates = 12 + seed;
    c.textSlots = 58 + seed;
    c.sampledRun = (seed % 2) != 0;
    c.sampled.intervals = static_cast<std::uint32_t>(3 + seed);
    c.sampled.ipcHat = 1.5 + static_cast<double>(seed);
    c.wallSeconds = 0.5 + static_cast<double>(seed);
    c.workPerSec = 1e6 + static_cast<double>(seed);
    c.outcome = CellOutcome::Ok;
    c.retries = static_cast<std::uint32_t>(seed % 3);
    return c;
}

/** Overwrite one byte at @p off (negative: from the end). */
void
flipByte(const fs::path &file, long long off)
{
    std::fstream f(file,
                   std::ios::in | std::ios::out | std::ios::binary);
    if (off < 0)
        f.seekp(off, std::ios::end);
    else
        f.seekp(off, std::ios::beg);
    char c = 0;
    f.seekg(f.tellp());
    f.get(c);
    f.seekp(-1, std::ios::cur);
    c = static_cast<char>(c ^ 0x5a);
    f.put(c);
}

fs::path
journalFile(const ScratchDir &dir)
{
    for (const auto &e : fs::directory_iterator(dir.path))
        if (e.path().extension() == ".mgsj")
            return e.path();
    return {};
}

} // namespace

// ------------------------------------------------------------ primitives

TEST(FailSoft, GateLatchesOnFirstFailure)
{
    FailSoftGate g;
    EXPECT_TRUE(g.ok());
    g.fail("test failure %d", 1);
    EXPECT_FALSE(g.ok());
    g.fail("silent second failure");   // must not warn again or reopen
    EXPECT_FALSE(g.ok());
}

TEST(FailSoft, SweepCellRoundTripsThroughSerialization)
{
    for (std::uint64_t seed : {0ull, 1ull, 2ull, 5ull}) {
        SweepCell in = makeCell(seed);
        if (seed == 1) {
            in.outcome = CellOutcome::Failed;
            in.error = "synthetic failure";
        }
        if (seed == 2)
            in.outcome = CellOutcome::TimedOut;
        SerialWriter w;
        serializeSweepCell(in, w);

        SerialReader r(w.data());
        SweepCell out;
        ASSERT_TRUE(deserializeSweepCell(r, out)) << "seed " << seed;
        EXPECT_EQ(in.stats, out.stats);
        EXPECT_EQ(in.timed, out.timed);
        EXPECT_EQ(in.staticCoverage, out.staticCoverage);
        EXPECT_EQ(in.templates, out.templates);
        EXPECT_EQ(in.textSlots, out.textSlots);
        EXPECT_EQ(in.sampledRun, out.sampledRun);
        EXPECT_EQ(in.sampled.intervals, out.sampled.intervals);
        EXPECT_EQ(in.sampled.ipcHat, out.sampled.ipcHat);
        EXPECT_EQ(in.wallSeconds, out.wallSeconds);
        EXPECT_EQ(in.workPerSec, out.workPerSec);
        EXPECT_EQ(in.outcome, out.outcome);
        EXPECT_EQ(in.error, out.error);
        EXPECT_EQ(in.retries, out.retries);
        EXPECT_FALSE(out.journalHit);   // runtime state, never travels
    }
}

TEST(FailSoft, TruncatedCellRecordIsRejected)
{
    SerialWriter w;
    serializeSweepCell(makeCell(3), w);
    for (std::size_t keep : {std::size_t(0), w.size() / 2,
                             w.size() - 1}) {
        SerialReader r(w.data().data(), keep);
        SweepCell out;
        EXPECT_FALSE(deserializeSweepCell(r, out)) << "keep " << keep;
    }
}

TEST(Pool, WaitRethrowsATaskExceptionAndPoolSurvives)
{
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("task boom"); });
    EXPECT_THROW(pool.wait(), std::runtime_error);

    // The worker must survive the throw and the error must not stick:
    // the pool keeps executing and the next wait() is clean.
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&] { ran.fetch_add(1); });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_EQ(ran.load(), 8);
}

TEST(Pool, ParallelForRunsEveryIndexAndRethrowsLowest)
{
    for (int jobs : {1, 4}) {
        std::vector<std::atomic<int>> ran(16);
        for (auto &r : ran)
            r.store(0);
        std::string caught;
        try {
            ThreadPool::parallelFor(jobs, 16, [&](std::size_t i) {
                ran[i].fetch_add(1);
                if (i == 3 || i == 9)
                    throw std::runtime_error("idx " +
                                             std::to_string(i));
            });
            FAIL() << "parallelFor swallowed the exception";
        } catch (const std::runtime_error &e) {
            caught = e.what();
        }
        // Deterministic selection: the lowest throwing index wins at
        // every jobs count, and no index is skipped because a
        // neighbour threw.
        EXPECT_EQ(caught, "idx 3") << "jobs " << jobs;
        for (int i = 0; i < 16; ++i)
            EXPECT_EQ(ran[i].load(), 1) << "index " << i;
    }
}

// -------------------------------------------------------- fault injector

TEST(FaultInject, ArmingIsSeededAndDeterministic)
{
    auto armedSet = [](const std::string &spec) {
        FaultArm arm(spec);
        std::set<int> armed;
        for (int k = 0; k < 32; ++k) {
            try {
                FaultInjector::global().at(FaultSite::Cell,
                                           "key" + std::to_string(k));
            } catch (const TransientError &) {
                armed.insert(k);
            }
        }
        return armed;
    };
    std::set<int> a = armedSet("cell:p=0.5:seed=3:count=0");
    std::set<int> b = armedSet("cell:p=0.5:seed=3:count=0");
    std::set<int> c = armedSet("cell:p=0.5:seed=4:count=0");
    EXPECT_EQ(a, b);                    // same spec, same keys fault
    EXPECT_NE(a, c);                    // the seed picks the victims
    EXPECT_GT(a.size(), 0u);            // p=0.5 arms some...
    EXPECT_LT(a.size(), 32u);           // ...but not all
}

TEST(FaultInject, CountLimitsFiringsPerKeyThenHeals)
{
    FaultArm arm("cell:count=2");
    FaultInjector &fi = FaultInjector::global();
    EXPECT_THROW(fi.at(FaultSite::Cell, "k"), TransientError);
    EXPECT_THROW(fi.at(FaultSite::Cell, "k"), TransientError);
    EXPECT_NO_THROW(fi.at(FaultSite::Cell, "k"));   // healed
    EXPECT_THROW(fi.at(FaultSite::Cell, "other"), TransientError);
    EXPECT_EQ(fi.fired(), 3u);
}

TEST(FaultInject, MatchSelectsSitesAndKeys)
{
    FaultArm arm("fail@crc:count=0,alloc@bitcount:count=0");
    FaultInjector &fi = FaultInjector::global();
    EXPECT_THROW(fi.at(FaultSite::CellFail, "crc|baseline"),
                 std::runtime_error);
    EXPECT_NO_THROW(fi.at(FaultSite::CellFail, "bitcount|baseline"));
    EXPECT_THROW(fi.at(FaultSite::Alloc, "bitcount|baseline"),
                 std::bad_alloc);
    EXPECT_NO_THROW(fi.at(FaultSite::Alloc, "crc|baseline"));
    // Unarmed sites never fire regardless of key.
    EXPECT_NO_THROW(fi.at(FaultSite::StoreRead, "crc|baseline"));
}

TEST(FaultInject, StallHonoursCancellation)
{
    FaultArm arm("stall:ms=10000");
    std::atomic<bool> cancel{true};   // deadline already fired
    EXPECT_THROW(
        FaultInjector::global().at(FaultSite::Stall, "k", &cancel),
        CellTimeout);
}

TEST(FaultInject, DisarmedInjectorIsFree)
{
    FaultInjector &fi = FaultInjector::global();
    EXPECT_FALSE(fi.armed());
    EXPECT_NO_THROW(faultPoint(FaultSite::Cell, "k"));
}

// ------------------------------------------------------- failure domains

TEST(FaultSweep, TransientFaultRetriesToBitIdenticalCells)
{
    SweepSpec spec = testSpec();
    SweepResult clean = ExperimentEngine(2).sweep(spec);

    FaultArm arm("cell");   // every cell faults once, then heals
    ExperimentEngine engine(2);
    engine.setFaultPolicy(fastRetry());
    SweepResult faulted = engine.sweep(spec);

    expectCellsEqual(clean, faulted);
    for (const SweepCell &c : faulted.cells) {
        EXPECT_EQ(c.outcome, CellOutcome::Ok);
        EXPECT_EQ(c.retries, 1u);
    }
    EXPECT_EQ(FaultInjector::global().fired(), faulted.cells.size());
}

TEST(FaultSweep, PermanentFaultCostsOnlyItsCells)
{
    SweepSpec spec = testSpec();
    FaultArm arm("fail@crc");
    ExperimentEngine engine(2);
    engine.setFaultPolicy(fastRetry());
    SweepResult r = engine.sweep(spec);

    ASSERT_EQ(r.cells.size(), 4u);
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
        for (std::size_t col = 0; col < r.columns.size(); ++col) {
            const SweepCell &c = r.at(row, col);
            if (r.rows[row] == "crc") {
                EXPECT_EQ(c.outcome, CellOutcome::Failed);
                EXPECT_FALSE(c.error.empty());
                EXPECT_FALSE(c.timed);   // no stats survive a failure
                EXPECT_EQ(c.retries, 0u);   // permanent: not retried
            } else {
                EXPECT_EQ(c.outcome, CellOutcome::Ok);
                EXPECT_TRUE(c.timed);
            }
        }
    }
    std::string digest = outcomeSummary(r);
    EXPECT_NE(digest.find("2 ok"), std::string::npos) << digest;
    EXPECT_NE(digest.find("2 failed"), std::string::npos) << digest;
}

TEST(FaultSweep, AllocFailureIsContained)
{
    SweepSpec spec = testSpec();
    FaultArm arm("alloc@bitcount|int-mem");
    ExperimentEngine engine(2);
    engine.setFaultPolicy(fastRetry());
    SweepResult r = engine.sweep(spec);

    int failed = 0;
    for (const SweepCell &c : r.cells)
        failed += c.outcome == CellOutcome::Failed;
    EXPECT_EQ(failed, 1);
    EXPECT_EQ(r.at(1, 1).outcome, CellOutcome::Failed);
    EXPECT_NE(r.at(1, 1).error.find("bad_alloc"), std::string::npos);
}

TEST(FaultSweep, ExhaustedRetriesFail)
{
    SweepSpec spec = testSpec();
    FaultArm arm("cell@crc|baseline:count=0");   // never heals
    ExperimentEngine engine(1);
    engine.setFaultPolicy(fastRetry(0, 2));
    SweepResult r = engine.sweep(spec);

    EXPECT_EQ(r.at(0, 0).outcome, CellOutcome::Failed);
    EXPECT_EQ(r.at(0, 0).retries, 2u);   // used every attempt
    EXPECT_EQ(r.at(0, 1).outcome, CellOutcome::Ok);
}

TEST(FaultSweep, StallTimesOutUnderDeadline)
{
    SweepSpec spec = testSpec();
    FaultArm arm("stall@crc:ms=10000");
    ExperimentEngine engine(2);
    // The deadline must be long enough that the healthy cells always
    // finish inside it — including under TSan's ~10x slowdown (the
    // stalled cells still cancel ~2ms past the deadline, so the test
    // pays the deadline, not the 10s stall).
    engine.setFaultPolicy(fastRetry(1.0));
    SweepResult r = engine.sweep(spec);

    for (std::size_t col = 0; col < r.columns.size(); ++col) {
        EXPECT_EQ(r.at(0, col).outcome, CellOutcome::TimedOut);
        EXPECT_EQ(r.at(0, col).retries, 0u);   // timeouts never retry
    }
    EXPECT_EQ(r.at(1, 0).outcome, CellOutcome::Ok);
}

TEST(FaultSweep, DeadlineCancelsARealSimulation)
{
    // No injection: a genuinely long cell must be cancelled by the
    // cooperative poll inside the timing loop itself. The M-scale
    // variant runs for hundreds of milliseconds, so a 10ms deadline
    // always fires mid-simulation.
    SweepSpec spec;
    spec.title = "deadline test";
    spec.workloads = {
        workload(bindKernel(findKernel("crc"), Scale::Long))};
    spec.columns = {{"baseline", SimConfig::baseline(), true}};
    ExperimentEngine engine(1);
    engine.setFaultPolicy(fastRetry(0.01));
    SweepResult r = engine.sweep(spec);

    ASSERT_EQ(r.cells.size(), 1u);
    EXPECT_EQ(r.cells[0].outcome, CellOutcome::TimedOut);
    EXPECT_FALSE(r.cells[0].timed);
}

TEST(FaultSweep, UnfiredPolicyIsByteIdenticalToNoPolicy)
{
    SweepSpec spec = testSpec();
    SweepResult plain = ExperimentEngine(2).sweep(spec);

    ExperimentEngine engine(2);
    engine.setFaultPolicy(fastRetry(600));   // generous: never fires
    SweepResult guarded = engine.sweep(spec);
    expectCellsEqual(plain, guarded);
    for (const SweepCell &c : guarded.cells)
        EXPECT_EQ(c.retries, 0u);
}

TEST(FaultSweep, FaultFieldsReachTheJsonOnlyWhenFaulted)
{
    ScratchDir dir("json");
    SweepSpec spec = testSpec();

    SweepResult clean = ExperimentEngine(2).sweep(spec);
    std::string cleanPath = dir.str() + "/clean.json";
    ASSERT_EQ(writeSweepJson(clean, "fault", cleanPath), cleanPath);

    FaultArm arm("fail@crc,cell@bitcount");
    ExperimentEngine engine(2);
    engine.setFaultPolicy(fastRetry());
    SweepResult faulted = engine.sweep(spec);
    std::string faultPath = dir.str() + "/faulted.json";
    ASSERT_EQ(writeSweepJson(faulted, "fault", faultPath), faultPath);

    auto slurp = [](const std::string &p) {
        std::ifstream in(p);
        return std::string(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
    };
    std::string cleanJson = slurp(cleanPath);
    EXPECT_EQ(cleanJson.find("\"outcome\""), std::string::npos);
    EXPECT_EQ(cleanJson.find("\"retries\""), std::string::npos);
    EXPECT_EQ(cleanJson.find("\"journal\""), std::string::npos);

    std::string faultJson = slurp(faultPath);
    EXPECT_NE(faultJson.find("\"outcome\": \"failed\""),
              std::string::npos);
    EXPECT_NE(faultJson.find("\"error\""), std::string::npos);
    EXPECT_NE(faultJson.find("\"retries\": 1"), std::string::npos);
    // Healed cells carry retries but no outcome ("ok" is implied by
    // absence, and must never be emitted).
    EXPECT_EQ(faultJson.find("\"outcome\": \"ok\""), std::string::npos);
}

// ------------------------------------------------------------ dry run

TEST(DryRun, PlansWithoutSimulating)
{
    SweepSpec spec = testSpec();
    ExperimentEngine engine(2);
    engine.setDryRun(true);
    SweepResult r = engine.sweep(spec);

    EXPECT_TRUE(r.planOnly);
    ASSERT_EQ(r.cells.size(), 4u);
    for (const SweepCell &c : r.cells) {
        EXPECT_EQ(c.outcome, CellOutcome::Skipped);
        EXPECT_FALSE(c.timed);
    }
    EngineCounters ec = engine.counters();
    EXPECT_EQ(ec.profileComputes, 0u);
    EXPECT_EQ(ec.runComputes, 0u);
    // A plan is not a report.
    EXPECT_EQ(writeSweepJson(r, "plan", "/tmp/never-written.json"), "");
}

// ------------------------------------------------------------- journal

TEST(Journal, RecordsReplayAndLookup)
{
    ScratchDir dir("roundtrip");
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(dir.str(), 0x1234));
        EXPECT_TRUE(j.attached());
        EXPECT_EQ(j.replayed(), 0u);
        j.record(1, makeCell(1));
        j.record(2, makeCell(2));
        j.record(1, makeCell(7));   // idempotent: first write wins
        EXPECT_EQ(j.recorded(), 2u);
    }
    SweepJournal j;
    ASSERT_TRUE(j.open(dir.str(), 0x1234));
    EXPECT_EQ(j.replayed(), 2u);
    SweepCell c;
    ASSERT_TRUE(j.lookup(1, c));
    EXPECT_TRUE(c.journalHit);
    EXPECT_EQ(c.stats, makeCell(1).stats);   // not the re-record
    EXPECT_FALSE(j.lookup(3, c));

    // A different spec fingerprint is a different file: no crosstalk.
    SweepJournal other;
    ASSERT_TRUE(other.open(dir.str(), 0x9999));
    EXPECT_EQ(other.replayed(), 0u);
}

TEST(Journal, TornTailIsTruncatedNotFatal)
{
    ScratchDir dir("torn");
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(dir.str(), 0xabcd));
        for (std::uint64_t i = 1; i <= 3; ++i)
            j.record(i, makeCell(i));
    }
    fs::path file = journalFile(dir);
    ASSERT_FALSE(file.empty());
    std::uintmax_t intact = fs::file_size(file);

    // A crash mid-append leaves a torn record at the tail.
    std::ofstream(file, std::ios::app | std::ios::binary)
        << "\x40\x00\x00\x00torn";
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(dir.str(), 0xabcd));
        EXPECT_EQ(j.replayed(), 3u);   // everything fsync'd survives
    }
    EXPECT_EQ(fs::file_size(file), intact);
}

TEST(Journal, CorruptRecordTruncatesFromThere)
{
    ScratchDir dir("corrupt");
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(dir.str(), 0xabcd));
        for (std::uint64_t i = 1; i <= 3; ++i)
            j.record(i, makeCell(i));
    }
    fs::path file = journalFile(dir);
    flipByte(file, -4);   // inside the last record's payload
    SweepJournal j;
    ASSERT_TRUE(j.open(dir.str(), 0xabcd));
    EXPECT_EQ(j.replayed(), 2u);   // checksum cuts the bad tail off
    j.record(9, makeCell(9));      // and appends still work
    EXPECT_EQ(j.recorded(), 3u);
}

TEST(Journal, BadHeaderRestartsFresh)
{
    ScratchDir dir("header");
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(dir.str(), 0xabcd));
        j.record(1, makeCell(1));
    }
    flipByte(journalFile(dir), 0);   // not our magic any more
    {
        SweepJournal j;
        ASSERT_TRUE(j.open(dir.str(), 0xabcd));
        EXPECT_EQ(j.replayed(), 0u);   // distrust the whole file
        j.record(2, makeCell(2));
    }
    SweepJournal j;
    ASSERT_TRUE(j.open(dir.str(), 0xabcd));
    EXPECT_EQ(j.replayed(), 1u);   // the restarted file is valid
}

TEST(Journal, UnusableDirectoryDegradesToNoOp)
{
    SweepJournal j;
    EXPECT_FALSE(j.open("/proc/no-such-dir/journal", 0x1));
    EXPECT_FALSE(j.attached());
    j.record(1, makeCell(1));   // must not crash
    SweepCell c;
    EXPECT_FALSE(j.lookup(1, c));
}

TEST(Journal, ResumedSweepSkipsFinishedCells)
{
    ScratchDir dir("resume");
    SweepSpec spec = testSpec();

    ExperimentEngine first(2);
    first.setJournalDir(dir.str());
    SweepResult a = first.sweep(spec);
    EXPECT_TRUE(a.journalAttached);
    EXPECT_EQ(a.journalRecorded, a.cells.size());

    // Same spec, fresh engine: every cell replays, nothing simulates.
    ExperimentEngine second(2);
    second.setJournalDir(dir.str());
    SweepResult b = second.sweep(spec);
    expectCellsEqual(a, b);
    EXPECT_EQ(b.journalRecorded, a.journalRecorded);
    EngineCounters ec = second.counters();
    EXPECT_EQ(ec.profileComputes, 0u);
    EXPECT_EQ(ec.runComputes, 0u);
}

TEST(Journal, OnlyOkCellsJournalSoFailuresRetryOnResume)
{
    ScratchDir dir("heal");
    SweepSpec spec = testSpec();
    SweepResult clean = ExperimentEngine(2).sweep(spec);

    {
        // First run: crc permanently fails, bitcount succeeds.
        FaultArm arm("fail@crc:count=0");
        ExperimentEngine engine(2);
        engine.setFaultPolicy(fastRetry());
        engine.setJournalDir(dir.str());
        SweepResult r = engine.sweep(spec);
        EXPECT_EQ(r.journalRecorded, 2u);   // the two Ok cells only
    }
    // The fault "was transient at machine scale": rerunning without it
    // must re-simulate exactly the failed cells and converge to the
    // fault-free sweep.
    ExperimentEngine engine(2);
    engine.setJournalDir(dir.str());
    SweepResult r = engine.sweep(spec);
    expectCellsEqual(clean, r);
    EXPECT_EQ(r.journalRecorded, 4u);
    EngineCounters ec = engine.counters();
    EXPECT_EQ(ec.profileComputes, 1u);   // crc's artifacts only
}

TEST(Journal, DryRunReportsHitsWithoutTouchingTheJournal)
{
    ScratchDir dir("plan");
    SweepSpec spec = testSpec();
    {
        ExperimentEngine engine(2);
        engine.setJournalDir(dir.str());
        engine.sweep(spec);
    }
    std::uintmax_t size = fs::file_size(journalFile(dir));
    ExperimentEngine engine(2);
    engine.setJournalDir(dir.str());
    engine.setDryRun(true);
    SweepResult r = engine.sweep(spec);
    EXPECT_TRUE(r.planOnly);
    for (const SweepCell &c : r.cells) {
        EXPECT_EQ(c.outcome, CellOutcome::Skipped);
        EXPECT_TRUE(c.journalHit);
    }
    EXPECT_EQ(fs::file_size(journalFile(dir)), size);   // read-only
}
