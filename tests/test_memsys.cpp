/**
 * @file
 * Memory-system unit tests: sparse memory semantics, cache geometry /
 * LRU behaviour, hierarchy latencies, and bus serialization.
 */

#include <gtest/gtest.h>

#include "memsys/hierarchy.hh"
#include "memsys/memory.hh"

namespace mg {
namespace {

TEST(MemoryTest, ZeroFillAndLittleEndian)
{
    Memory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    m.write(0x1000, 0x0807060504030201ull, 8);
    EXPECT_EQ(m.read(0x1000, 1), 0x01u);
    EXPECT_EQ(m.read(0x1001, 2), 0x0302u);
    EXPECT_EQ(m.read(0x1004, 4), 0x08070605u);
}

TEST(MemoryTest, CrossPageAccess)
{
    Memory m;
    Addr a = Memory::pageBytes - 4;
    m.write(a, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(a, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.residentPages(), 2u);
}

TEST(MemoryTest, BlockOps)
{
    Memory m;
    std::uint8_t buf[5] = {1, 2, 3, 4, 5};
    m.writeBlock(0x42, buf, 5);
    auto out = m.readBlock(0x42, 5);
    EXPECT_EQ(out, std::vector<std::uint8_t>({1, 2, 3, 4, 5}));
}

TEST(CacheTest, GeometryChecks)
{
    CacheGeometry g{32 * 1024, 2, 32};
    Cache c(g, "t");
    EXPECT_EQ(c.geometry().numSets(), 512u);
}

TEST(CacheTest, HitAfterFill)
{
    Cache c({1024, 2, 32}, "t");
    EXPECT_FALSE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x100, false).hit);
    EXPECT_TRUE(c.access(0x11f, false).hit);   // same line
    EXPECT_FALSE(c.access(0x120, false).hit);  // next line
}

TEST(CacheTest, LruEviction)
{
    // 2-way, 16 sets of 32B lines: addresses 0x000, 0x200, 0x400 map
    // to the same set.
    Cache c({1024, 2, 32}, "t");
    c.access(0x000, false);
    c.access(0x200, false);
    c.access(0x000, false);           // refresh LRU for 0x000
    c.access(0x400, false);           // evicts 0x200
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_TRUE(c.probe(0x400));
}

TEST(CacheTest, DirtyWriteback)
{
    Cache c({64, 1, 32}, "t");        // direct-mapped, 2 sets
    c.access(0x000, true);            // dirty
    CacheResult r = c.access(0x040, false);   // same set, evicts dirty
    EXPECT_TRUE(r.writebackDirty);
    CacheResult r2 = c.access(0x080, false);  // evicts clean
    EXPECT_FALSE(r2.writebackDirty);
}

TEST(CacheTest, MissRateAccounting)
{
    Cache c({1024, 2, 32}, "t");
    for (int i = 0; i < 10; ++i)
        c.access(0x100, false);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.hits(), 9u);
    EXPECT_NEAR(c.missRate(), 0.1, 1e-12);
}

TEST(HierarchyTest, LatencyLevels)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    // Cold: full trip to DRAM (L1 + L2 + mem + line transfer).
    MemAccess miss = h.dataAccess(0x1000, false, 0);
    EXPECT_GE(miss.readyAt, cfg.l1dLat + cfg.l2Lat + cfg.memLat);
    // Warm L1.
    MemAccess hit = h.dataAccess(0x1000, false, 200);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.readyAt, 200 + cfg.l1dLat);
    // L2 hit after L1 eviction: touch enough lines to evict from the
    // 2-way 32KB L1 but stay within the 2MB L2.
    for (Addr a = 0; a < 3 * 32 * 1024; a += 32)
        h.dataAccess(0x100000 + a, false, 300);
    MemAccess l2 = h.dataAccess(0x1000, false, 5000000);
    EXPECT_FALSE(l2.l1Hit);
    EXPECT_TRUE(l2.l2Hit);
    EXPECT_EQ(l2.readyAt, 5000000 + cfg.l1dLat + cfg.l2Lat);
}

TEST(HierarchyTest, BusSerializesMisses)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    // Two simultaneous DRAM misses: the second line transfer waits for
    // the first (128B line / 16B bus * 4 core cycles = 32 cycles).
    MemAccess a = h.dataAccess(0x10000, false, 0);
    MemAccess b = h.dataAccess(0x20000, false, 0);
    EXPECT_GE(b.readyAt, a.readyAt + 32);
}

TEST(HierarchyTest, InstPathUsesICache)
{
    HierarchyConfig cfg;
    Hierarchy h(cfg);
    h.instAccess(textBase, 0);
    EXPECT_EQ(h.l1i().misses(), 1u);
    MemAccess hit = h.instAccess(textBase + 4, 100);
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.readyAt, 100 + cfg.l1iLat);
}

} // namespace
} // namespace mg
