/**
 * @file
 * Store-sets unit tests: violation-driven set formation, load-store
 * pairing through the LFST, set merging, and store completion.
 */

#include <gtest/gtest.h>

#include "uarch/store_sets.hh"

namespace mg {
namespace {

TEST(StoreSetsTest, UnknownLoadIsUnconstrained)
{
    StoreSets ss;
    EXPECT_EQ(ss.dispatchLoad(0x1000), 0u);
}

TEST(StoreSetsTest, ViolationCreatesDependence)
{
    StoreSets ss;
    Addr load = 0x1000, store = 0x2000;
    ss.recordViolation(load, store);
    EXPECT_EQ(ss.violations(), 1u);
    // Next store at that PC registers in the LFST...
    EXPECT_EQ(ss.dispatchStore(store, 42), 0u);
    // ...and the paired load must now wait for it.
    EXPECT_EQ(ss.dispatchLoad(load), 42u);
}

TEST(StoreSetsTest, StoresInOneSetOrderBehindEachOther)
{
    StoreSets ss;
    ss.recordViolation(0x1000, 0x2000);
    ss.recordViolation(0x1000, 0x3000);   // merges sets
    ss.dispatchStore(0x2000, 10);
    // The second store of the set must order behind the first.
    EXPECT_EQ(ss.dispatchStore(0x3000, 11), 10u);
    EXPECT_EQ(ss.dispatchLoad(0x1000), 11u);
}

TEST(StoreSetsTest, CompleteStoreClearsLfst)
{
    StoreSets ss;
    ss.recordViolation(0x1000, 0x2000);
    ss.dispatchStore(0x2000, 7);
    ss.completeStore(0x2000, 7);
    EXPECT_EQ(ss.dispatchLoad(0x1000), 0u);
}

TEST(StoreSetsTest, CompleteOnlyClearsMatchingSeq)
{
    StoreSets ss;
    ss.recordViolation(0x1000, 0x2000);
    ss.dispatchStore(0x2000, 7);
    ss.dispatchStore(0x2000, 9);    // newer store in the set
    ss.completeStore(0x2000, 7);    // stale completion: keep 9
    EXPECT_EQ(ss.dispatchLoad(0x1000), 9u);
}

TEST(StoreSetsTest, PeriodicClearForgetsPairings)
{
    StoreSetsConfig cfg;
    cfg.clearInterval = 4;
    StoreSets ss(cfg);
    ss.recordViolation(0x1000, 0x2000);
    ss.dispatchStore(0x2000, 5);
    // Drive enough accesses to cross the clear interval.
    for (int i = 0; i < 8; ++i)
        ss.dispatchLoad(0x9000);
    EXPECT_EQ(ss.dispatchLoad(0x1000), 0u);
}

} // namespace
} // namespace mg
