/**
 * @file
 * Huge-workload tier (label: huge): the 10M+-unit scale. One kernel
 * per suite must reproduce its C++ reference checksum on both input
 * sets, retire at least ten million units of dynamic work, and match
 * golden stats-identity hashes for the paper's three machine shapes.
 * The tier exists to stress state the M-scale tier cannot: store-set
 * clear intervals (the sweep test below shows the functional
 * store-set shadow is measurably non-neutral once clears fire inside
 * a sampled run's detailed spans) and fast-forward scalability.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "engine/engine.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

#include "stats_hash.hh"

namespace {

using namespace mg;
using namespace mg::testhash;

class HugeKernel : public ::testing::TestWithParam<const char *>
{
};

TEST_P(HugeKernel, ValidatesAndRetiresAtLeastTenMillion)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()), Scale::Huge);
    // checkKernel is fatal on a checksum mismatch or a hung kernel.
    std::uint64_t work = checkKernel(bk, 0);
    EXPECT_GE(work, 10000000u) << GetParam() << " too short for the "
                                               "huge tier";
}

TEST_P(HugeKernel, ValidatesOnAlternateInput)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()), Scale::Huge);
    std::uint64_t work = checkKernel(bk, 1);
    EXPECT_GE(work, 10000000u) << GetParam();
}

/** Derived from the registry so a newly huge-capable kernel is
 *  validated here automatically (only the golden hash table below
 *  stays manual). */
std::vector<const char *>
hugeKernelNames()
{
    std::vector<const char *> names;
    for (const Kernel &k : allKernels()) {
        if (k.supports(Scale::Huge))
            names.push_back(k.name);
    }
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllHuge, HugeKernel,
                         ::testing::ValuesIn(hugeKernelNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

TEST(HugeRegistry, CoversEverySuite)
{
    // At least one representative per suite, and every huge kernel
    // also supports the long tier (the scale axis is a ladder, not a
    // patchwork).
    for (const std::string &suite : suiteNames()) {
        bool any = false;
        for (const Kernel *k : suiteKernels(suite))
            any = any || k->supports(Scale::Huge);
        EXPECT_TRUE(any) << suite << " has no huge-scale kernel";
    }
    for (const Kernel &k : allKernels()) {
        if (k.supports(Scale::Huge)) {
            EXPECT_TRUE(k.supports(Scale::Long)) << k.name;
        }
    }
    // Huge workload ids are scale-suffixed for the artifact caches.
    for (const EngineWorkload &w : suiteWorkloads("all", 0, Scale::Huge))
        EXPECT_NE(w.id.find("@huge"), std::string::npos) << w.id;
}

// ------------------------------------------------------------------
// Golden stats-identity hashes, recorded from the engine this tier
// shipped with (PR 5). Regenerate only for a deliberate, documented
// timing-model change.
// ------------------------------------------------------------------

const Golden hugeGoldens[] = {
    {"mcf", "base", 0xbbd42d23ac8f0a46ull},
    {"mcf", "int", 0xafbb6af1bcbde955ull},
    {"mcf", "intmem", 0x546aabcc1e5125b4ull},
    {"jpeg.dct", "base", 0x208642615c3ea880ull},
    {"jpeg.dct", "int", 0x4ba8f690dadab65full},
    {"jpeg.dct", "intmem", 0xead8c3956285006aull},
    {"crc", "base", 0x8f49ad99a78c7e84ull},
    {"crc", "int", 0x53d476215356c7e4ull},
    {"crc", "intmem", 0xc016882b10caeee2ull},
    {"sha", "base", 0xa11607341c8612f8ull},
    {"sha", "int", 0x8dc596b4acdb2b24ull},
    {"sha", "intmem", 0x88ef3f0a98996a71ull},
};

TEST(HugePerfIdentity, GoldenStatsHashEveryHugeKernelTimesThreeConfigs)
{
    std::size_t hugeCount = 0;
    for (const Kernel &k : allKernels())
        hugeCount += k.supports(Scale::Huge);
    EXPECT_EQ(std::size(hugeGoldens), 3 * hugeCount);

    for (const Golden &g : hugeGoldens) {
        BoundKernel bk = bindKernel(findKernel(g.kernel), Scale::Huge);
        SimConfig cfg = configOf(g.config);
        CoreStats s;
        if (!cfg.useMiniGraphs) {
            s = runCell(*bk.program, nullptr, cfg, bk.setup);
        } else {
            BlockProfile prof = collectProfile(*bk.program, bk.setup,
                                               cfg.profileBudget);
            PreparedMg prep = prepareMiniGraphs(
                *bk.program, prof, cfg.policy, cfg.machine, cfg.compress);
            s = runCell(*bk.program, &prep, cfg, bk.setup);
        }
        EXPECT_EQ(statsHash(s), g.hash)
            << g.kernel << "@huge x " << g.config
            << ": cycles=" << s.cycles << " work=" << s.committedWork
            << " ipc=" << s.ipc();
    }
}

// ------------------------------------------------------------------
// Store-set clear-interval sweep: the huge tier is what finally makes
// the functional store-set shadow measurable.
// ------------------------------------------------------------------

TEST(HugeStoreSets, ClearIntervalSweepShowsShadowIsNoLongerNeutral)
{
    // sha re-violates its learned (load PC, store PC) pairs after
    // every store-set table clear. Under grid-aligned placement at
    // the production clear interval (262144 accesses) a sampled run's
    // detailed spans never cross a clear, so the shadow is neutral —
    // on- and off-shadow runs are bit-identical. Shrink the interval
    // until clears fire inside the detailed spans of a 10M-unit run
    // and the shadow becomes measurably non-neutral: it re-trains
    // violated pairs across fast-forward gaps, suppressing
    // re-discovery violations inside measurement intervals and
    // cutting the IPC error.
    BoundKernel bk = bindKernel(findKernel("sha"), Scale::Huge);
    EngineWorkload w = workload(bk);

    auto runAt = [&](std::uint64_t clearInterval, bool shadow,
                     CoreStats *fullOut) {
        ExperimentEngine eng(0);
        SimConfig cfg = SimConfig::intMemMg();
        cfg.core.ss.clearInterval = clearInterval;
        if (fullOut)
            *fullOut = eng.cell(w, cfg);
        SimConfig sc = cfg;
        sc.sampling.enabled = true;
        sc.sampling.ssShadow = shadow;
        return eng.cellSampled(w, sc);
    };

    // Production interval: neutral, bit for bit. Pinned under
    // explicit grid-aligned (salt-zero) placement through the sim
    // layer: the engine's phase-salted placement can legitimately
    // move a detailed span onto a clear boundary — exactly the
    // regime the shrunk-interval half below exercises on purpose —
    // so the controlled no-clears-in-span claim belongs to the grid.
    {
        SimConfig cfg = SimConfig::intMemMg();
        cfg.core.ss.clearInterval = 262144;
        BlockProfile prof = collectProfile(*bk.program, bk.setup,
                                           cfg.profileBudget);
        PreparedMg prep = prepareMiniGraphs(
            *bk.program, prof, cfg.policy, cfg.machine, cfg.compress);
        SimConfig sc = cfg;
        sc.sampling.enabled = true;
        SampleSummary sum = collectSampleSummary(
            prep.program, &prep.table, bk.setup, sc.sampling);
        sc.sampling.ssShadow = true;
        SampledStats defOn =
            runCellSampled(prep.program, &prep, sc, bk.setup, sum);
        sc.sampling.ssShadow = false;
        SampledStats defOff =
            runCellSampled(prep.program, &prep, sc, bk.setup, sum);
        EXPECT_EQ(defOn.est, defOff.est)
            << "shadow unexpectedly active at the production clear "
               "interval under grid placement";
    }

    // Clears inside the detailed spans: the shadow must change the
    // estimate (non-neutral), suppress violations, and not hurt the
    // IPC estimate.
    CoreStats full;
    SampledStats on = runAt(4096, true, &full);
    SampledStats off = runAt(4096, false, nullptr);
    EXPECT_GT(full.ordViolations, 1000u)
        << "huge sha no longer crosses clear intervals";
    EXPECT_NE(on.est, off.est) << "shadow neutral at huge scale";
    EXPECT_LT(on.est.ordViolations, off.est.ordViolations);
    // Both estimates stay accurate — the shadow changes *what the
    // fast-forward preserves*, it must not destabilize the estimator
    // either way.
    double errOn = std::abs(on.est.ipc() - full.ipc()) / full.ipc();
    double errOff = std::abs(off.est.ipc() - full.ipc()) / full.ipc();
    EXPECT_LE(errOn, 0.01);
    EXPECT_LE(errOff, 0.01);
}

// ------------------------------------------------------------------
// Sampling still holds its envelope at 10M scale.
// ------------------------------------------------------------------

TEST(HugeSampling, WarmThroughAccuracyAndFastForwardDominance)
{
    ExperimentEngine eng(0);
    for (const BoundKernel &bk : bindAll(Scale::Huge)) {
        EngineWorkload w = workload(bk);
        SimConfig cfg = SimConfig::baseline();
        double full = eng.cell(w, cfg).ipc();
        SimConfig sc = cfg;
        sc.sampling.enabled = true;
        SampledStats s = eng.cellSampled(w, sc);
        ASSERT_GT(full, 0.0);
        EXPECT_FALSE(s.exact) << w.id;
        EXPECT_FALSE(s.footprintWarning) << w.id;   // warm-through
        double err = std::abs(s.est.ipc() - full) / full;
        // Historic worst case was 1.99% (jpeg.dct, whose 16k-work
        // block period aliases against a grid-aligned measurement
        // placement); 3% trips loudly on a regression of the tier.
        EXPECT_LE(err, 0.03)
            << w.id << " sampled " << s.est.ipc() << " vs full " << full;
        // The salted measurement phase (SamplingParams::phaseSalt,
        // derived per cell by the engine) de-aliases that bias:
        // jpeg.dct measured 0.93% salted. Pin the cell that motivated
        // the fix under 1% so a placement regression re-announces
        // itself here, not in a figure.
        if (w.id.find("jpeg.dct") != std::string::npos) {
            EXPECT_LT(err, 0.01)
                << w.id << " sampling alias is back: sampled "
                << s.est.ipc() << " vs full " << full;
        }
        // At 10M units the duty cap dominates: the overwhelming share
        // of the run is fast-forwarded, not simulated in detail.
        EXPECT_GT(s.ffWork, (8 * s.totalWork) / 10) << w.id;
    }
}

} // namespace
