/**
 * @file
 * Selection unit tests: coverage weighting, greedy conflict
 * resolution, template coalescing, MGT budget, and domain-specific
 * (shared-MGT) selection.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "mg/select.hh"

namespace mg {
namespace {

struct World
{
    Program prog;
    std::unique_ptr<Cfg> cfg;
    std::unique_ptr<Liveness> live;
    BlockProfile prof;
};

World
makeWorld(const std::string &src)
{
    World w;
    w.prog = assemble(src);
    w.cfg = std::make_unique<Cfg>(w.prog);
    w.live = std::make_unique<Liveness>(*w.cfg);
    return w;
}

// Two sites with the same idiom in differently-hot blocks.
const char *twoSites = R"(
    .text
main:
        addq r1, 1, r2
        addq r2, 1, r3
        stq r3, out
        addq r4, 1, r5
        addq r5, 1, r6
        stq r6, out+8
        halt
        .data
out:    .space 16
)";

TEST(Select, CoalescesIdenticalTemplates)
{
    // Integer-only policy: with memory allowed, the two three-insn
    // store graphs win instead (their stq displacements differ, so
    // they cannot coalesce).
    World w = makeWorld(twoSites);
    w.prof.record(0, 100);
    SelectionPolicy intOnly;
    intOnly.allowMemory = false;
    Selection sel = selectMiniGraphs(*w.cfg, *w.live, w.prof, intOnly,
                                     MgtMachine{});
    // Both addq/addq pairs share one MGT entry.
    ASSERT_GE(sel.instances.size(), 2u);
    bool sharedId = false;
    for (size_t i = 0; i < sel.instances.size(); ++i) {
        for (size_t j = i + 1; j < sel.instances.size(); ++j) {
            if (sel.instances[i].mgid == sel.instances[j].mgid)
                sharedId = true;
        }
    }
    EXPECT_TRUE(sharedId);
}

TEST(Select, InstancesNeverOverlap)
{
    World w = makeWorld(twoSites);
    w.prof.record(0, 10);
    Selection sel = selectMiniGraphs(*w.cfg, *w.live, w.prof,
                                     SelectionPolicy{}, MgtMachine{});
    std::vector<bool> used(w.prog.text.size(), false);
    for (const auto &si : sel.instances) {
        for (InsnIdx m : si.cand.members) {
            EXPECT_FALSE(used[m]) << "instruction claimed twice";
            used[m] = true;
        }
    }
}

TEST(Select, PrefersHotterTemplates)
{
    // Same structure, but one block is 100x hotter. With a one-entry
    // budget, selection must pick a template covering the hot loop.
    World w = makeWorld(R"(
        .text
main:
        li r9, 100
hot:
        addq r1, 1, r2
        addq r2, 3, r3
        stq r3, out
        subq r9, 1, r9
        bgt r9, hot
        addq r4, 2, r5
        addq r5, 7, r6
        stq r6, out+8
        halt
        .data
out:    .space 16
    )");
    int hot_blk = w.cfg->blockStartingAt(1);
    ASSERT_GE(hot_blk, 0);
    w.prof.record(0, 1);
    w.prof.record(1, 100);
    w.prof.record(w.cfg->blocks()[static_cast<size_t>(
                      w.cfg->blockOf(6))].first, 1);

    SelectionPolicy budget1;
    budget1.maxTemplates = 1;
    Selection sel = selectMiniGraphs(*w.cfg, *w.live, w.prof, budget1,
                                     MgtMachine{});
    ASSERT_EQ(sel.table.size(), 1u);
    ASSERT_GE(sel.instances.size(), 1u);
    // Every selected instance must lie in the hot loop block.
    for (const auto &si : sel.instances)
        EXPECT_EQ(si.cand.block, w.cfg->blockOf(1));
}

TEST(Select, RespectsTemplateBudget)
{
    World w = makeWorld(twoSites);
    w.prof.record(0, 10);
    SelectionPolicy policy;
    policy.maxTemplates = 1;
    Selection sel = selectMiniGraphs(*w.cfg, *w.live, w.prof, policy,
                                     MgtMachine{});
    EXPECT_LE(sel.table.size(), 1u);
}

TEST(Select, CoverageMatchesDefinition)
{
    World w = makeWorld(twoSites);
    w.prof.record(0, 10);
    SelectionPolicy intOnly;
    intOnly.allowMemory = false;
    Selection sel = selectMiniGraphs(*w.cfg, *w.live, w.prof, intOnly,
                                     MgtMachine{});
    // Program: one block of 7 insns executed 10 times = 70 dynamic.
    // Two 2-insn graphs remove (2-1)*10 each = 20 -> 2/7.
    EXPECT_NEAR(sel.coverage(*w.cfg, w.prof), 2.0 / 7.0, 1e-9);

    // With memory graphs allowed, the three-instruction store graphs
    // win: (3-1)*10*2 / 70 = 4/7.
    Selection mem = selectMiniGraphs(*w.cfg, *w.live, w.prof,
                                     SelectionPolicy{}, MgtMachine{});
    EXPECT_NEAR(mem.coverage(*w.cfg, w.prof), 4.0 / 7.0, 1e-9);
}

TEST(Select, ZeroProfileSelectsNothingUseful)
{
    World w = makeWorld(twoSites);
    Selection sel = selectMiniGraphs(*w.cfg, *w.live, w.prof,
                                     SelectionPolicy{}, MgtMachine{});
    EXPECT_EQ(sel.coverage(*w.cfg, w.prof), 0.0);
}

TEST(SelectDomain, SharedTemplatesAcrossPrograms)
{
    World a = makeWorld(twoSites);
    World b = makeWorld(twoSites);
    a.prof.record(0, 10);
    b.prof.record(0, 30);

    auto sels = selectDomainMiniGraphs(
        {a.cfg.get(), b.cfg.get()}, {a.live.get(), b.live.get()},
        {&a.prof, &b.prof}, SelectionPolicy{}, MgtMachine{});
    ASSERT_EQ(sels.size(), 2u);
    EXPECT_GE(sels[0].instances.size(), 1u);
    EXPECT_GE(sels[1].instances.size(), 1u);
}

TEST(SelectDomain, BudgetSharedAcrossSuite)
{
    World a = makeWorld(twoSites);
    // A second program with a different idiom.
    World b = makeWorld(R"(
        .text
main:
        srl r1, 3, r2
        and r2, 7, r3
        stq r3, out
        halt
        .data
out:    .space 8
    )");
    a.prof.record(0, 10);
    b.prof.record(0, 10);

    SelectionPolicy policy;
    policy.maxTemplates = 1;   // room for only one shared template
    auto sels = selectDomainMiniGraphs(
        {a.cfg.get(), b.cfg.get()}, {a.live.get(), b.live.get()},
        {&a.prof, &b.prof}, policy, MgtMachine{});
    // Exactly one of the programs gets coverage.
    size_t covered = (sels[0].instances.empty() ? 0 : 1) +
        (sels[1].instances.empty() ? 0 : 1);
    EXPECT_EQ(covered, 1u);
}

} // namespace
} // namespace mg
