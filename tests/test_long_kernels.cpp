/**
 * @file
 * Long-workload tier (label: long): every long-scale kernel must
 * reproduce its C++ reference checksum on both input sets, retire at
 * least one million units of dynamic work, and match golden
 * stats-identity hashes (test_perf_identity.cpp style) for the
 * paper's three machine shapes — so the M-scale tier is pinned
 * bit-for-bit exactly like the tier-1 kernels.
 */

#include <gtest/gtest.h>

#include <chrono>

#include "analysis/critpath.hh"
#include "sim/simulator.hh"
#include "workloads/suites.hh"

#include "stats_hash.hh"

namespace {

using namespace mg;
using namespace mg::testhash;

class LongKernel : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LongKernel, ValidatesAndRetiresAtLeastOneMillion)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()), Scale::Long);
    // checkKernel is fatal on a checksum mismatch or a hung kernel.
    std::uint64_t work = checkKernel(bk, 0);
    EXPECT_GE(work, 1000000u) << GetParam() << " too short for the "
                                              "long tier";
}

TEST_P(LongKernel, ValidatesOnAlternateInput)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()), Scale::Long);
    std::uint64_t work = checkKernel(bk, 1);
    EXPECT_GE(work, 1000000u) << GetParam();
}

/** Derived from the registry so a newly long-capable kernel is
 *  validated here automatically (only the golden hash table below
 *  stays manual). */
std::vector<const char *>
longKernelNames()
{
    std::vector<const char *> names;
    for (const Kernel &k : allKernels()) {
        if (k.supports(Scale::Long))
            names.push_back(k.name);
    }
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllLong, LongKernel,
                         ::testing::ValuesIn(longKernelNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

TEST(LongRegistry, EveryKernelHasALongVariant)
{
    // The scale axis is complete: all 23 kernels support the long
    // tier, so `--scale long` sweeps the whole corpus.
    std::vector<EngineWorkload> ws = suiteWorkloads("all", 0, Scale::Long);
    EXPECT_EQ(ws.size(), allKernels().size());
    for (const Kernel &k : allKernels())
        EXPECT_TRUE(k.supports(Scale::Long)) << k.name;
    // Long workload ids are scale-suffixed so every engine artifact
    // cache keys them apart from the tier-1 runs.
    for (const EngineWorkload &w : ws)
        EXPECT_NE(w.id.find("@long"), std::string::npos) << w.id;
}

TEST(LongRegistry, SharedProgramKernelsReuseTheRefBinary)
{
    // Iteration-count-scaled kernels (null variant source) must
    // assemble to the same Program object; buffer-scaled kernels must
    // not.
    const Kernel &mcf = findKernel("mcf");
    EXPECT_EQ(&kernelProgram(mcf, Scale::Ref),
              &kernelProgram(mcf, Scale::Long));
    const Kernel &crc = findKernel("crc");
    EXPECT_NE(&kernelProgram(crc, Scale::Ref),
              &kernelProgram(crc, Scale::Long));
}

// ------------------------------------------------------------------
// Golden stats-identity hashes for every long kernel, recorded from
// the engine the full 23-kernel tier shipped with (PR 5); the nine
// PR 4 rows are unchanged. Regenerate only for a deliberate,
// documented timing-model change.
// ------------------------------------------------------------------

const Golden longGoldens[] = {
    {"gzip", "base", 0x76677af01995ab66ull},
    {"gzip", "int", 0x8d9f664122d2001cull},
    {"gzip", "intmem", 0xe679ca1d8e6eecc0ull},
    {"mcf", "base", 0x15d8a34e559528fdull},
    {"mcf", "int", 0x09cd98eff961b456ull},
    {"mcf", "intmem", 0x694ee090c192e105ull},
    {"parser", "base", 0x75e22b4c90907e1bull},
    {"parser", "int", 0x9ff4c329b0b7271cull},
    {"parser", "intmem", 0x35baadfe175d9f5aull},
    {"twolf", "base", 0x0e68575ab0352eb4ull},
    {"twolf", "int", 0x8147bdae1667b81aull},
    {"twolf", "intmem", 0xc2393b6222520556ull},
    {"gap", "base", 0x06179413ed5ae2f4ull},
    {"gap", "int", 0x83060db2ac56743aull},
    {"gap", "intmem", 0xe3ed0c86d2ade726ull},
    {"crafty", "base", 0xca7935e435cda176ull},
    {"crafty", "int", 0x6ad1d88898a5970full},
    {"crafty", "intmem", 0x4d41809c3991bef6ull},
    {"adpcm.enc", "base", 0x4dd5147d503c3b5eull},
    {"adpcm.enc", "int", 0xe1db00ef57e8e45bull},
    {"adpcm.enc", "intmem", 0x123150bbfa5ed498ull},
    {"adpcm.dec", "base", 0x5fd24e52e4f43850ull},
    {"adpcm.dec", "int", 0x9dd3df38036a35fdull},
    {"adpcm.dec", "intmem", 0x705467a1902c25f3ull},
    {"g721.enc", "base", 0x8e8b50ad46cc57d1ull},
    {"g721.enc", "int", 0xd8cdd66599a9832aull},
    {"g721.enc", "intmem", 0xd8cdd66599a9832aull},
    {"jpeg.dct", "base", 0x31844b2421bd2c7eull},
    {"jpeg.dct", "int", 0xf04bc5080d3af205ull},
    {"jpeg.dct", "intmem", 0xde2aecf5ae14cedcull},
    {"mpeg2.idct", "base", 0xa936ce7a081d2563ull},
    {"mpeg2.idct", "int", 0xfad3659f58d32f11ull},
    {"mpeg2.idct", "intmem", 0x0a2806dc49476bd0ull},
    {"gsm.lpc", "base", 0xdf883fe5dd59fe3cull},
    {"gsm.lpc", "int", 0xd96c0faff984dc95ull},
    {"gsm.lpc", "intmem", 0x0b1af7537c612157ull},
    {"crc", "base", 0xfaf0bab3acd34c76ull},
    {"crc", "int", 0x9a77047649184dd5ull},
    {"crc", "intmem", 0x01c61bc66bccaee5ull},
    {"drr", "base", 0x7a57cfbb2c45ebd2ull},
    {"drr", "int", 0x1cda78e0fb8e6c0aull},
    {"drr", "intmem", 0x08bba60ae2155528ull},
    {"frag", "base", 0xb464ddbf10bb83bfull},
    {"frag", "int", 0xfef5aee827a2ad43ull},
    {"frag", "intmem", 0xb23a6b6cae21d0e0ull},
    {"rtr", "base", 0xdf3a8dec72900d70ull},
    {"rtr", "int", 0xd473d3fcfc8d835full},
    {"rtr", "intmem", 0x65f236a83be3d0ecull},
    {"reed", "base", 0x86b7d0ae8e3b4dc6ull},
    {"reed", "int", 0x339abe70ba553e90ull},
    {"reed", "intmem", 0xaf37c9cbfd3a6625ull},
    {"bitcount", "base", 0x21a5b3679fb91bb2ull},
    {"bitcount", "int", 0x4a3d340a79b1eb02ull},
    {"bitcount", "intmem", 0x4a3d340a79b1eb02ull},
    {"sha", "base", 0x78dafe77b3454761ull},
    {"sha", "int", 0x0b5998e8d77a7749ull},
    {"sha", "intmem", 0x7689da5ecf0b6c9aull},
    {"dijkstra", "base", 0x98b2f7c36602a921ull},
    {"dijkstra", "int", 0xd6107545b9b58fdbull},
    {"dijkstra", "intmem", 0x02935e1bd071e8a0ull},
    {"stringsearch", "base", 0xe92bae915d5914d7ull},
    {"stringsearch", "int", 0xb44e1622355fb0a8ull},
    {"stringsearch", "intmem", 0x6598ae48171fbd90ull},
    {"blowfish", "base", 0xb0fab20ddd958aa2ull},
    {"blowfish", "int", 0x3f68d53df75753a5ull},
    {"blowfish", "intmem", 0x2dd7efe476ffd400ull},
    {"rgb2gray", "base", 0x75843324c7843a81ull},
    {"rgb2gray", "int", 0x15ae70c23aad2fceull},
    {"rgb2gray", "intmem", 0xbd45b6dce0b2d8d1ull},
};

TEST(LongPerfIdentity, GoldenTableCoversEveryLongKernel)
{
    // 23 kernels x 3 machine shapes: adding a long kernel without
    // recording its golden rows must fail loudly, not silently shrink
    // the pinned surface.
    std::size_t longCount = 0;
    for (const Kernel &k : allKernels())
        longCount += k.supports(Scale::Long);
    EXPECT_EQ(std::size(longGoldens), 3 * longCount);
}

TEST(LongPerfIdentity, GoldenStatsHashEveryLongKernelTimesThreeConfigs)
{
    for (const Golden &g : longGoldens) {
        BoundKernel bk = bindKernel(findKernel(g.kernel), Scale::Long);
        SimConfig cfg = configOf(g.config);
        CoreStats s;
        if (!cfg.useMiniGraphs) {
            s = runCell(*bk.program, nullptr, cfg, bk.setup);
        } else {
            BlockProfile prof = collectProfile(*bk.program, bk.setup,
                                               cfg.profileBudget);
            PreparedMg prep = prepareMiniGraphs(
                *bk.program, prof, cfg.policy, cfg.machine, cfg.compress);
            s = runCell(*bk.program, &prep, cfg, bk.setup);
        }
        EXPECT_EQ(statsHash(s), g.hash)
            << g.kernel << "@long x " << g.config
            << ": cycles=" << s.cycles << " work=" << s.committedWork
            << " ipc=" << s.ipc();
    }
}

// ------------------------------------------------------------------
// What-if walk vs re-simulation: the analyzer's cost advantage.
// ------------------------------------------------------------------

TEST(LongCritPath, WhatIfWalkIsTenTimesCheaperThanResim)
{
    // The point of the --whatif backend: once a cell has been traced
    // and analyzed, a design-space question ("what does a 256-entry
    // ROB buy?") is a graph re-walk over the event window, not
    // another cycle-accurate simulation. The simulate/trace/analyze
    // cost is paid once per cell by --critpath; what this test pins
    // is the marginal cost of a question — CritPathAnalyzer::whatIf —
    // against the re-simulation it replaces, at least 10x cheaper on
    // an M-scale kernel (measured ~15-20x; the slack absorbs noisy CI
    // machines). The first spec is timed cold, so the lazy residual
    // pass is inside the measured walk, not hidden by it.
    BoundKernel bk = bindKernel(findKernel("gzip"), Scale::Long);
    SimConfig cfg = SimConfig::baseline();

    TraceBuffer trace;   // default ring: newest ~256k events
    Core core(*bk.program, nullptr, cfg.core);
    core.setTrace(&trace);
    bk.setup(core.oracle());   // long-scale inputs
    auto t0 = std::chrono::steady_clock::now();
    CoreStats st = core.run();
    double resimS = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    ASSERT_GT(st.committedWork, 1000000u);

    CritPathAnalyzer an(trace, cfg.core);
    ASSERT_TRUE(an.summary().present);

    std::string err;
    auto t1 = std::chrono::steady_clock::now();
    std::uint64_t widened = an.whatIf("robsize=256", &err);
    double walkS = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t1)
                       .count();
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_GT(widened, 0u);
    EXPECT_LE(widened, an.summary().actualCycles);   // widening
    EXPECT_GE(resimS, 10.0 * walkS)
        << "what-if walk " << walkS << "s vs re-sim " << resimS << "s";

    // The one-shot wrapper answers the same question with the same
    // number, so the cheap path and the bench path cannot drift.
    CritPathSummary one = analyzeCritPath(trace, cfg.core, "robsize=256");
    EXPECT_EQ(one.whatIfCycles, widened);
    EXPECT_TRUE(one.error.empty()) << one.error;
}

} // namespace
