/**
 * @file
 * Long-workload tier (label: long): every long-scale kernel must
 * reproduce its C++ reference checksum on both input sets, retire at
 * least one million units of dynamic work, and match golden
 * stats-identity hashes (test_perf_identity.cpp style) for the
 * paper's three machine shapes — so the M-scale tier is pinned
 * bit-for-bit exactly like the tier-1 kernels.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/suites.hh"

#include "stats_hash.hh"

namespace {

using namespace mg;
using namespace mg::testhash;

class LongKernel : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LongKernel, ValidatesAndRetiresAtLeastOneMillion)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()), Scale::Long);
    // checkKernel is fatal on a checksum mismatch or a hung kernel.
    std::uint64_t work = checkKernel(bk, 0);
    EXPECT_GE(work, 1000000u) << GetParam() << " too short for the "
                                              "long tier";
}

TEST_P(LongKernel, ValidatesOnAlternateInput)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()), Scale::Long);
    std::uint64_t work = checkKernel(bk, 1);
    EXPECT_GE(work, 1000000u) << GetParam();
}

/** Derived from the registry so a newly long-capable kernel is
 *  validated here automatically (only the golden hash table below
 *  stays manual). */
std::vector<const char *>
longKernelNames()
{
    std::vector<const char *> names;
    for (const Kernel &k : allKernels()) {
        if (k.supports(Scale::Long))
            names.push_back(k.name);
    }
    return names;
}

INSTANTIATE_TEST_SUITE_P(AllLong, LongKernel,
                         ::testing::ValuesIn(longKernelNames()),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

TEST(LongRegistry, CoversEverySuiteWithAtLeastEight)
{
    std::vector<EngineWorkload> ws = suiteWorkloads("all", 0, Scale::Long);
    EXPECT_GE(ws.size(), 8u);
    for (const std::string &suite : suiteNames()) {
        EXPECT_FALSE(bindSuite(suite, Scale::Long).empty())
            << suite << " has no long-scale kernel";
    }
    // Long workload ids are scale-suffixed so every engine artifact
    // cache keys them apart from the tier-1 runs.
    for (const EngineWorkload &w : ws)
        EXPECT_NE(w.id.find("@long"), std::string::npos) << w.id;
}

TEST(LongRegistry, SharedProgramKernelsReuseTheRefBinary)
{
    // Iteration-count-scaled kernels (null longSource) must assemble
    // to the same Program object; buffer-scaled kernels must not.
    const Kernel &mcf = findKernel("mcf");
    EXPECT_EQ(&kernelProgram(mcf, Scale::Ref),
              &kernelProgram(mcf, Scale::Long));
    const Kernel &crc = findKernel("crc");
    EXPECT_NE(&kernelProgram(crc, Scale::Ref),
              &kernelProgram(crc, Scale::Long));
}

// ------------------------------------------------------------------
// Golden stats-identity hashes, recorded from the engine this tier
// shipped with (PR 4). Regenerate only for a deliberate, documented
// timing-model change.
// ------------------------------------------------------------------

const Golden longGoldens[] = {
    {"mcf", "base", 0x15d8a34e559528fdull},
    {"mcf", "int", 0x09cd98eff961b456ull},
    {"mcf", "intmem", 0x694ee090c192e105ull},
    {"twolf", "base", 0x0e68575ab0352eb4ull},
    {"twolf", "int", 0x8147bdae1667b81aull},
    {"twolf", "intmem", 0xc2393b6222520556ull},
    {"gap", "base", 0x06179413ed5ae2f4ull},
    {"gap", "int", 0x83060db2ac56743aull},
    {"gap", "intmem", 0xe3ed0c86d2ade726ull},
    {"jpeg.dct", "base", 0x31844b2421bd2c7eull},
    {"jpeg.dct", "int", 0xf04bc5080d3af205ull},
    {"jpeg.dct", "intmem", 0xde2aecf5ae14cedcull},
    {"gsm.lpc", "base", 0xdf883fe5dd59fe3cull},
    {"gsm.lpc", "int", 0xd96c0faff984dc95ull},
    {"gsm.lpc", "intmem", 0x0b1af7537c612157ull},
    {"crc", "base", 0xfaf0bab3acd34c76ull},
    {"crc", "int", 0x9a77047649184dd5ull},
    {"crc", "intmem", 0x01c61bc66bccaee5ull},
    {"rtr", "base", 0xdf3a8dec72900d70ull},
    {"rtr", "int", 0xd473d3fcfc8d835full},
    {"rtr", "intmem", 0x65f236a83be3d0ecull},
    {"bitcount", "base", 0x21a5b3679fb91bb2ull},
    {"bitcount", "int", 0x4a3d340a79b1eb02ull},
    {"bitcount", "intmem", 0x4a3d340a79b1eb02ull},
    {"sha", "base", 0x78dafe77b3454761ull},
    {"sha", "int", 0x0b5998e8d77a7749ull},
    {"sha", "intmem", 0x7689da5ecf0b6c9aull},
};

TEST(LongPerfIdentity, GoldenStatsHashEveryLongKernelTimesThreeConfigs)
{
    for (const Golden &g : longGoldens) {
        BoundKernel bk = bindKernel(findKernel(g.kernel), Scale::Long);
        SimConfig cfg = configOf(g.config);
        CoreStats s;
        if (!cfg.useMiniGraphs) {
            s = runCell(*bk.program, nullptr, cfg, bk.setup);
        } else {
            BlockProfile prof = collectProfile(*bk.program, bk.setup,
                                               cfg.profileBudget);
            PreparedMg prep = prepareMiniGraphs(
                *bk.program, prof, cfg.policy, cfg.machine, cfg.compress);
            s = runCell(*bk.program, &prep, cfg, bk.setup);
        }
        EXPECT_EQ(statsHash(s), g.hash)
            << g.kernel << "@long x " << g.config
            << ": cycles=" << s.cycles << " work=" << s.committedWork
            << " ipc=" << s.ipc();
    }
}

} // namespace
