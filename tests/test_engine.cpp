/**
 * @file
 * ExperimentEngine contract tests: a parallel sweep is bit-identical
 * to a serial one, artifacts are computed exactly once per fingerprint
 * (cache hits skip re-profiling / re-preparing / re-running), and the
 * engine's cells agree with the one-call simulate() flow.
 */

#include <gtest/gtest.h>

#include "engine/engine.hh"
#include "engine/fingerprint.hh"
#include "workloads/suites.hh"

namespace {

using namespace mg;

constexpr std::uint64_t testBudget = 30000;

SweepSpec
testSpec()
{
    SweepSpec spec;
    spec.title = "engine test";
    for (const char *name : {"crc", "bitcount"})
        spec.workloads.push_back(workload(bindKernel(findKernel(name))));
    spec.columns = standardColumns();
    for (SweepColumn &c : spec.columns)
        c.config.runBudget = testBudget;
    spec.baselineColumn = 0;
    return spec;
}

TEST(Engine, ParallelSweepBitIdenticalToSerial)
{
    SweepSpec spec = testSpec();
    SweepResult serial = ExperimentEngine(1).sweep(spec);
    SweepResult parallel = ExperimentEngine(4).sweep(spec);

    ASSERT_EQ(serial.cells.size(),
              spec.workloads.size() * spec.columns.size());
    ASSERT_EQ(serial.cells.size(), parallel.cells.size());
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
        const SweepCell &a = serial.cells[i];
        const SweepCell &b = parallel.cells[i];
        EXPECT_EQ(a.stats, b.stats) << "cell " << i;
        EXPECT_EQ(a.timed, b.timed);
        EXPECT_EQ(a.staticCoverage, b.staticCoverage);
        EXPECT_EQ(a.templates, b.templates);
        EXPECT_EQ(a.textSlots, b.textSlots);
    }
}

TEST(Engine, CellMatchesSimulate)
{
    BoundKernel bk = bindKernel(findKernel("crc"));
    SimConfig cfg = SimConfig::intMemMg();
    cfg.runBudget = testBudget;
    ExperimentEngine engine(2);
    EXPECT_EQ(engine.cell(workload(bk), cfg),
              simulate(*bk.program, cfg, bk.setup));
}

TEST(Engine, ArtifactsComputedOncePerFingerprint)
{
    SweepSpec spec = testSpec();
    // A repeated configuration under a different display name must
    // dedupe onto the same artifacts and timing run.
    SweepColumn dup = spec.columns[3];
    dup.name = "int-mem-again";
    spec.columns.push_back(dup);

    ExperimentEngine engine(4);
    SweepResult r = engine.sweep(spec);
    std::uint64_t w = spec.workloads.size();

    EngineCounters c = engine.counters();
    // One functional profile per workload: every mini-graph column
    // shares the same profiling budget.
    EXPECT_EQ(c.profileComputes, w);
    // One prepare per distinct (policy, machine, compress): the four
    // standard mini-graph machines; the duplicate column only hits.
    EXPECT_EQ(c.prepareComputes, 4 * w);
    EXPECT_GE(c.prepareHits, w);
    // One timing run per distinct cell: five distinct configurations
    // (the duplicate dedupes onto int-mem).
    EXPECT_EQ(c.runComputes, 5 * w);
    EXPECT_GE(c.runHits, w);

    // The deduped column's cells are bit-identical to the original's.
    for (std::size_t row = 0; row < r.rows.size(); ++row)
        EXPECT_EQ(r.at(row, 3).stats, r.at(row, 5).stats);

    // Re-running the identical sweep performs no new computation.
    engine.sweep(spec);
    EngineCounters c2 = engine.counters();
    EXPECT_EQ(c2.profileComputes, c.profileComputes);
    EXPECT_EQ(c2.prepareComputes, c.prepareComputes);
    EXPECT_EQ(c2.runComputes, c.runComputes);
    EXPECT_GT(c2.runHits, c.runHits);
}

TEST(Engine, UntimedColumnsPrepareWithoutRunning)
{
    SweepSpec spec = testSpec();
    for (SweepColumn &c : spec.columns)
        c.timing = false;
    ExperimentEngine engine(2);
    SweepResult r = engine.sweep(spec);
    EXPECT_EQ(engine.counters().runComputes, 0u);
    for (std::size_t row = 0; row < r.rows.size(); ++row) {
        EXPECT_FALSE(r.at(row, 1).timed);
        EXPECT_EQ(r.at(row, 1).stats.cycles, 0u);
        EXPECT_GT(r.at(row, 1).templates, 0u);   // selection happened
    }
}

TEST(Engine, FingerprintIgnoresDisplayName)
{
    SimConfig a = SimConfig::intMemMg();
    SimConfig b = a;
    b.name = "same machine, different label";
    EXPECT_EQ(cellFingerprint("k", a), cellFingerprint("k", b));

    SimConfig c = a;
    c.core.physRegs -= 1;
    EXPECT_NE(cellFingerprint("k", a), cellFingerprint("k", c));
    SimConfig d = a;
    d.policy.maxTemplates = 8;
    EXPECT_NE(cellFingerprint("k", a), cellFingerprint("k", d));
}

} // namespace
