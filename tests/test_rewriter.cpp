/**
 * @file
 * Rewriter unit tests: handle planting, nop padding, compression
 * re-linking, and template rebuild under compression.
 */

#include <gtest/gtest.h>

#include "assembler/assembler.hh"
#include "emu/emulator.hh"
#include "mg/rewriter.hh"

namespace mg {
namespace {

struct World
{
    Program prog;
    std::unique_ptr<Cfg> cfg;
    std::unique_ptr<Liveness> live;
    BlockProfile prof;
    Selection sel;
};

World
prepare(const std::string &src)
{
    World w;
    w.prog = assemble(src);
    w.cfg = std::make_unique<Cfg>(w.prog);
    w.live = std::make_unique<Liveness>(*w.cfg);
    for (const BasicBlock &b : w.cfg->blocks())
        w.prof.record(b.first, 10);
    w.sel = selectMiniGraphs(*w.cfg, *w.live, w.prof, SelectionPolicy{},
                             MgtMachine{});
    return w;
}

const char *loopSrc = R"(
    .text
main:
        li r9, 20
loop:
        addq r1, 1, r2
        addq r2, 3, r3
        stq r3, out
        subq r9, 1, r9
        bgt r9, loop
        halt
        .data
out:    .space 8
)";

TEST(Rewriter, NopPadPreservesLayout)
{
    World w = prepare(loopSrc);
    ASSERT_GE(w.sel.instances.size(), 1u);
    Program rw = rewriteNopPad(w.prog, w.sel);
    EXPECT_EQ(rw.text.size(), w.prog.text.size());
    EXPECT_EQ(rw.symbols, w.prog.symbols);
    int handles = 0, nops = 0;
    for (const Instruction &in : rw.text) {
        if (in.isHandle())
            ++handles;
        if (in.op == Op::NOP)
            ++nops;
    }
    EXPECT_GE(handles, 1);
    EXPECT_GE(nops, 1);
}

TEST(Rewriter, HandleEncodesInterface)
{
    World w = prepare(loopSrc);
    Program rw = rewriteNopPad(w.prog, w.sel);
    for (const SelectedInstance &si : w.sel.instances) {
        const Instruction &h = rw.text[si.cand.anchor];
        ASSERT_TRUE(h.isHandle());
        EXPECT_EQ(h.imm, si.mgid);
        if (!si.cand.inputs.empty())
            EXPECT_EQ(h.ra, si.cand.inputs[0]);
        if (si.cand.output != regNone)
            EXPECT_EQ(h.rc, si.cand.output);
    }
}

TEST(Rewriter, CompressShrinksText)
{
    World w = prepare(loopSrc);
    RewriteResult rr = rewriteCompress(w.prog, w.sel, MgtMachine{});
    EXPECT_LT(rr.program.text.size(), w.prog.text.size());
    // No nops in the compressed image.
    for (const Instruction &in : rr.program.text)
        EXPECT_NE(in.op, Op::NOP);
}

TEST(Rewriter, CompressedProgramRunsCorrectly)
{
    World w = prepare(loopSrc);
    RewriteResult rr = rewriteCompress(w.prog, w.sel, MgtMachine{});

    Emulator ref(w.prog);
    ref.run();
    Emulator cmp(rr.program, &rr.table);
    cmp.run();
    EXPECT_EQ(ref.memory().read(w.prog.symbol("out"), 8),
              cmp.memory().read(rr.program.symbol("out"), 8));
}

TEST(Rewriter, CompressionRelinksBranchTargets)
{
    World w = prepare(loopSrc);
    RewriteResult rr = rewriteCompress(w.prog, w.sel, MgtMachine{});
    for (const Instruction &in : rr.program.text) {
        if (in.cls() == InsnClass::CondBranch)
            EXPECT_TRUE(rr.program.validPc(static_cast<Addr>(in.imm)));
    }
    // Symbols move consistently.
    EXPECT_LE(rr.program.symbol("main"), w.prog.symbol("main"));
}

} // namespace
} // namespace mg
