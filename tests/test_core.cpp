/**
 * @file
 * Timing-core integration tests: the out-of-order core must retire
 * exactly the oracle's dynamic work for every kernel (baseline and
 * mini-graph configurations), produce architecturally correct outputs,
 * and report sane IPC. Also covers the bandwidth/capacity and
 * scheduler knobs used in the figure benches.
 */

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/suites.hh"

namespace mg {
namespace {

std::uint64_t
referenceWork(const BoundKernel &bk)
{
    Emulator emu(*bk.program);
    bk.kernel->setup(emu, 0);
    return emu.run(100000000ull).dynWork;
}

class CoreBaseline : public ::testing::TestWithParam<const char *>
{
};

TEST_P(CoreBaseline, RetiresOracleWork)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()));
    std::uint64_t expect = referenceWork(bk);

    CoreConfig cfg;
    Core core(*bk.program, nullptr, cfg);
    bk.kernel->setup(core.oracle(), 0);
    CoreStats st = core.run();

    EXPECT_EQ(st.committedWork, expect) << GetParam();
    EXPECT_EQ(st.committedSlots, expect) << GetParam();
    EXPECT_TRUE(bk.kernel->validate(core.oracle(), 0)) << GetParam();
    EXPECT_GT(st.ipc(), 0.05) << GetParam();
    EXPECT_LT(st.ipc(), 6.0) << GetParam();
}

TEST_P(CoreBaseline, MiniGraphConfigRetiresSameWork)
{
    BoundKernel bk = bindKernel(findKernel(GetParam()));
    std::uint64_t expect = referenceWork(bk);

    SimConfig sc = SimConfig::intMemMg();
    BlockProfile prof = collectProfile(*bk.program, bk.setup,
                                       sc.profileBudget);
    PreparedMg prep = prepareMiniGraphs(*bk.program, prof, sc.policy,
                                        sc.machine);

    Core core(prep.program, &prep.table, sc.core);
    bk.kernel->setup(core.oracle(), 0);
    CoreStats st = core.run();

    EXPECT_EQ(st.committedWork, expect) << GetParam();
    EXPECT_LE(st.committedSlots, expect) << GetParam();
    EXPECT_GT(st.committedHandles, 0u) << GetParam();
    EXPECT_TRUE(bk.kernel->validate(core.oracle(), 0)) << GetParam();
    // Dynamic coverage consistency: slots + removed = work.
    EXPECT_NEAR(st.dynamicCoverage(),
                1.0 - static_cast<double>(st.committedSlots) /
                          static_cast<double>(st.committedWork),
                1e-12);
}

const char *const coreKernels[] = {
    "gzip", "mcf", "crafty", "adpcm.enc", "jpeg.dct", "gsm.lpc", "crc",
    "rtr", "reed", "bitcount", "sha", "blowfish", "rgb2gray", "drr",
};

INSTANTIATE_TEST_SUITE_P(Kernels, CoreBaseline,
                         ::testing::ValuesIn(coreKernels),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

TEST(CoreKnobs, NarrowerMachineIsSlower)
{
    BoundKernel bk = bindKernel(findKernel("rgb2gray"));
    CoreConfig wide;
    CoreConfig narrow;
    narrow.fetchWidth = narrow.renameWidth = narrow.issueWidth =
        narrow.commitWidth = 2;
    narrow.fu.issueWidth = 2;

    CoreStats w = runCore(*bk.program, nullptr, wide, bk.setup);
    CoreStats n = runCore(*bk.program, nullptr, narrow, bk.setup);
    EXPECT_LT(n.ipc(), w.ipc());
}

TEST(CoreKnobs, SmallerRegisterFileIsNotFaster)
{
    // crc has no in-window store-to-load races, so register-file
    // scaling is monotone (sha is the counterexample, below).
    BoundKernel bk = bindKernel(findKernel("crc"));
    CoreConfig big;
    CoreConfig small;
    small.physRegs = 104;

    CoreStats b = runCore(*bk.program, nullptr, big, bk.setup);
    CoreStats s = runCore(*bk.program, nullptr, small, bk.setup);
    EXPECT_LE(s.ipc(), b.ipc() * 1.001);
    EXPECT_EQ(s.committedWork, b.committedWork);
}

TEST(CoreKnobs, StoreSetsSerializeShasInWindowRaces)
{
    // sha's message schedule stores w[i] and loads w[i-3] about 36
    // instructions later. A 100-entry speculative window exposes the
    // race: ordering violations occur, store sets learn the pairs,
    // and later loads serialize. The shallow 40-entry window never
    // speculates across the dependence.
    BoundKernel bk = bindKernel(findKernel("sha"));
    CoreConfig deep;
    CoreConfig shallow;
    shallow.physRegs = 104;

    CoreStats d = runCore(*bk.program, nullptr, deep, bk.setup);
    CoreStats s = runCore(*bk.program, nullptr, shallow, bk.setup);
    EXPECT_GT(d.ordViolations, 0u);
    EXPECT_EQ(s.ordViolations, 0u);
    EXPECT_EQ(d.committedWork, s.committedWork);
}

TEST(CoreKnobs, TwoCycleSchedulerIsSlowerOnSerialCode)
{
    // gsm.lpc is a serial dependence chain: pipelining the scheduler
    // must cost performance on the baseline machine.
    BoundKernel bk = bindKernel(findKernel("gsm.lpc"));
    CoreConfig fast;
    CoreConfig slow;
    slow.schedulerCycles = 2;

    CoreStats f = runCore(*bk.program, nullptr, fast, bk.setup);
    CoreStats s = runCore(*bk.program, nullptr, slow, bk.setup);
    EXPECT_LT(s.ipc(), f.ipc());
}

TEST(CoreKnobs, PerfectFrontEndBoundsIpcByIssueWidth)
{
    BoundKernel bk = bindKernel(findKernel("bitcount"));
    CoreConfig cfg;
    CoreStats st = runCore(*bk.program, nullptr, cfg, bk.setup);
    EXPECT_LE(st.ipc(), static_cast<double>(cfg.issueWidth));
}

TEST(CoreStatsTest, StallCountersAreConsistent)
{
    BoundKernel bk = bindKernel(findKernel("mcf"));
    CoreConfig cfg;
    cfg.robSize = 16;   // force ROB-full stalls
    CoreStats st = runCore(*bk.program, nullptr, cfg, bk.setup);
    EXPECT_GT(st.robFullStalls, 0u);
    EXPECT_GT(st.dcacheMisses, 0u);   // mcf is cache-hostile
}

} // namespace
} // namespace mg
